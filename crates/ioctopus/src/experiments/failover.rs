//! Robustness: per-PF throughput through a PF outage (fault injection).
//!
//! Not a figure from the paper — the fault-injection companion to
//! Figure 14. A [`FaultPlan`] kills PF0 mid-stream and revives it later:
//!
//! * **octoNIC**: IOctoRFS resteers PF0's flows to the surviving PF at the
//!   failure instant — the stream never goes dark. Service degrades to
//!   NUDMA: every DMA now crosses the interconnect to reach the node-0
//!   application and misses DDIO, so the outage is paid in memory and QPI
//!   bandwidth. (Raw throughput can even *exceed* the healthy level,
//!   because the survivor queue's NAPI runs on the far socket and frees
//!   the application's core — the classic remote-IRQ tradeoff.) After
//!   `PfRecover` the driver pulls the flows home and throughput returns
//!   to the pre-fault level.
//! * **ethNIC** (single-PF placement): the standard firmware has no
//!   cross-PF path, so the stream goes dark for the whole outage.
//!
//! The same 1000× time scale as the migration experiment applies.

use kernel::NetdevId;
use simcore::{Dur, FaultPlan, Time};

use crate::config::{BuildOpts, Placement};
use crate::experiments::pf_rates;
use crate::netloop::{make_rx_stream, App, NetLoop};
use crate::results::{FailoverResult, PfSample};
use crate::system::build_duplex;

/// Total simulated duration.
pub const TOTAL: Dur = Dur::from_ms(10);
/// PF0 fails here.
pub const FAIL_AT: Dur = Dur::from_ms(3);
/// PF0 completes its function-level reset here.
pub const RECOVER_AT: Dur = Dur::from_ms(6);
/// Per-PF throughput sampling interval.
pub const SAMPLE_EVERY: Dur = Dur::from_us(50);
/// Driver-watchdog cadence while faults are in play.
pub const WATCHDOG_EVERY: Dur = Dur::from_us(50);

/// Runs the failover experiment. `octo = false` uses the standard
/// firmware/driver with the workload placed on PF0's node (the
/// configuration with no surviving path).
pub fn run(octo: bool) -> FailoverResult {
    let p = if octo {
        Placement::Octopus
    } else {
        Placement::Local
    };
    let mut duplex = build_duplex(p, BuildOpts::default());
    // The workload lives on core 0 (node 0), local to the PF that dies.
    let app = make_rx_stream(&mut duplex, 0, 0, NetdevId(0), 65536, 512 * 1024, 4777);
    let mut nl = NetLoop::new(duplex);
    let i = nl.add_app(App::Rx(app));
    nl.enable_sampling(SAMPLE_EVERY);
    let plan = FaultPlan::pf_outage(0, Time::ZERO + FAIL_AT, Time::ZERO + RECOVER_AT);
    nl.install_fault_plan(&plan, WATCHDOG_EVERY);
    nl.start_apps(Time::ZERO);
    nl.run(Time::ZERO + TOTAL);
    crate::perf::note_events(nl.events_processed());

    let consumed = match nl.app(i) {
        App::Rx(a) => a.consumed,
        _ => unreachable!(),
    };
    let nic = nl.duplex.server.nic.counters();
    let robust = nl.duplex.server.robustness();
    FailoverResult {
        config: if octo { "octoNIC" } else { "ethNIC" }.to_string(),
        samples: pf_rates(&nl.samples),
        resteered_flows: nic.resteered_flows,
        error_completions: nic.error_completions,
        dropped_pf_dead: nic.dropped_pf_dead,
        watchdog_recoveries: robust.watchdog_irq_recoveries,
        consumed,
    }
}

/// Mean total (PF0+PF1) throughput over samples with `t` in `[a_ms, b_ms)`.
pub fn mean_total(r: &FailoverResult, a_ms: f64, b_ms: f64) -> f64 {
    let sel: Vec<&PfSample> = r
        .samples
        .iter()
        .filter(|s| s.t_secs >= a_ms && s.t_secs < b_ms)
        .collect();
    if sel.is_empty() {
        return 0.0;
    }
    sel.iter().map(|s| s.pf0_gbps + s.pf1_gbps).sum::<f64>() / sel.len() as f64
}

/// Mean PF1 throughput over the window (the survivor's share).
pub fn mean_pf1(r: &FailoverResult, a_ms: f64, b_ms: f64) -> f64 {
    let sel: Vec<&PfSample> = r
        .samples
        .iter()
        .filter(|s| s.t_secs >= a_ms && s.t_secs < b_ms)
        .collect();
    if sel.is_empty() {
        return 0.0;
    }
    sel.iter().map(|s| s.pf1_gbps).sum::<f64>() / sel.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octonic_survives_pf_outage_and_recovers() {
        let r = run(true);
        let before = mean_total(&r, 1.0, 2.9);
        let during = mean_total(&r, 3.3, 5.8);
        let after = mean_total(&r, 7.0, 9.5);
        assert!(before > 5.0, "healthy baseline: {before:.2} Gb/s");
        assert!(
            during > 0.5,
            "survivor keeps the stream alive: {during:.2} Gb/s"
        );
        // During the outage every byte rides PF1 — remote DMA for the
        // node-0 application (graceful degradation to NUDMA).
        let pf1_during = mean_pf1(&r, 3.3, 5.8);
        assert!(pf1_during > 0.5, "PF1 carries the outage: {pf1_during:.2}");
        assert!(
            (after / before - 1.0).abs() < 0.05,
            "throughput returns within 5%: {before:.2} -> {after:.2}"
        );
        assert!(r.resteered_flows >= 1, "firmware moved the flow");
    }

    #[test]
    fn single_pf_placement_goes_dark_during_outage() {
        let r = run(false);
        let before = mean_total(&r, 1.0, 2.9);
        let during = mean_total(&r, 3.3, 5.8);
        assert!(before > 5.0, "healthy baseline: {before:.2} Gb/s");
        assert!(during < 0.1, "no failover path exists: {during:.2} Gb/s");
        assert!(r.dropped_pf_dead > 0, "arrivals died at the dead PF");
    }
}
