//! Figure 15: NVMe NUDMA — fio vs. UPI-congesting STREAM instances.
//!
//! "We run 8 fio threads that each perform asynchronous direct reads …
//! Each thread continuously submits 32 read requests for 128 KB blocks.
//! The fio jobs interact with an SSD remote from their CPU. To load the
//! interconnect, we run instances of the STREAM benchmark that target
//! memory of the fio node but run on the SSD's node. The throughput of fio
//! degrades by up to 24% after five instances of STREAM, as a result of
//! UPI saturation." (§5.4)
//!
//! The runner also supports the OctoSSD mode (the paper's future work):
//! dual-port drives whose data DMA rides the port local to the buffer.

use std::collections::BinaryHeap;

use kernel::Cores;
use memsys::{MemConfig, MemSystem, NodeId};
use nvme::{MediaConfig, PortPolicy, Ssd, SsdConfig};
use pcie::{FabricConfig, PcieFabric, PcieGen};
use simcore::{Dur, Time};
use workloads::fio::{FioJob, BLOCK_BYTES, QUEUE_DEPTH};
use workloads::StreamAntagonist;

use crate::results::NvmeResult;

/// Number of fio jobs (paper: 8).
pub const JOBS: usize = 8;
/// Number of drives (paper: 4).
pub const SSDS: usize = 4;

/// Per-completion CPU cost of the io_uring/libaio reap + resubmit path.
const REAP_COST: Dur = Dur::from_us(2);

#[derive(Debug, PartialEq, Eq)]
struct Pending {
    at: Time,
    job: usize,
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at) // min-heap
    }
}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Raw outcome of one run.
#[derive(Debug, Clone, Copy)]
pub struct FioRun {
    /// fio aggregate bytes/second.
    pub fio_bytes_per_sec: f64,
    /// STREAM aggregate bytes/second.
    pub stream_bytes_per_sec: f64,
}

/// Runs fio + `streams` antagonist instances on the Skylake NVMe testbed.
pub fn run_raw(streams: usize, octo: bool, sim_ms: u64) -> FioRun {
    let mut mem = MemSystem::new(MemConfig::dual_socket_skylake());
    let mut fabric = PcieFabric::new(FabricConfig::default());
    let mut cores = Cores::new(mem.topology().total_cores());

    // Four dual-port drives; command port (index 0) on node 0 — remote to
    // the fio threads on node 1.
    let policy = if octo {
        PortPolicy::LocalToBuffer
    } else {
        PortPolicy::Fixed(0)
    };
    let mut ssds: Vec<Ssd> = (0..SSDS)
        .map(|i| {
            let p0 = fabric.add_endpoint(NodeId(0), PcieGen::Gen3, 4);
            let p1 = fabric.add_endpoint(NodeId(1), PcieGen::Gen3, 4);
            Ssd::new(
                i,
                SsdConfig::new(MediaConfig::pm1725a(), policy),
                vec![p0, p1],
                &mut mem,
                NodeId(1),
            )
        })
        .collect();

    // fio jobs on node-1 cores (24..), buffers node-local to the jobs.
    let mut jobs: Vec<FioJob> = (0..JOBS)
        .map(|j| {
            let bufs = (0..QUEUE_DEPTH)
                .map(|_| mem.alloc(NodeId(1), BLOCK_BYTES))
                .collect();
            FioJob::new(24 + j, j % SSDS, QUEUE_DEPTH, bufs)
        })
        .collect();

    // STREAM instances on node-0 cores, targeting node-1 memory (copy
    // kernel: both directions loaded).
    let mut ants: Vec<StreamAntagonist> = (0..streams)
        .flat_map(|i| {
            let (r, w) = StreamAntagonist::pair((2 * i) % 20, (2 * i + 1) % 20, NodeId(1));
            [r, w]
        })
        .collect();
    let mut ant_clocks = vec![Time::ZERO; ants.len()];

    let end = Time::from_ms(sim_ms);
    let warmup = Time::from_ms(sim_ms / 4);
    let mut heap = BinaryHeap::new();

    // Prime the queues, staggered at roughly the drives' service cadence:
    // a queue depth builds up no faster than the drive answers, and an
    // instantaneous 8 MB reservation burst would poison the transfer links.
    for (j, job) in jobs.iter_mut().enumerate() {
        let mut at = Time::ZERO;
        while job.want_to_submit() > 0 {
            let buf = job.submit();
            let r = ssds[job.ssd].read(at, buf, BLOCK_BYTES, &mut fabric, &mut mem);
            heap.push(Pending {
                at: r.done_at,
                job: j,
            });
            at += Dur::from_us(10);
        }
    }

    let mut fio_bytes = 0u64;
    let mut stream_base = 0u64;
    let mut counted = false;
    let mut completions = 0u64;
    while let Some(Pending { at, job }) = heap.pop() {
        if at > end {
            break;
        }
        completions += 1;
        // Step antagonists whose clocks lag this completion.
        for (i, a) in ants.iter_mut().enumerate() {
            while ant_clocks[i] < at {
                ant_clocks[i] = a.step(ant_clocks[i], &mut mem, &mut cores);
            }
        }
        if !counted && at >= warmup {
            counted = true;
            stream_base = ants.iter().map(StreamAntagonist::bytes_done).sum();
        }
        jobs[job].complete(BLOCK_BYTES);
        if at >= warmup {
            fio_bytes += BLOCK_BYTES;
        }
        // Reap + resubmit on the job's core.
        let t = cores.run(jobs[job].core, at, REAP_COST);
        let buf = jobs[job].submit();
        let ssd = jobs[job].ssd;
        let r = ssds[ssd].read(t, buf, BLOCK_BYTES, &mut fabric, &mut mem);
        heap.push(Pending { at: r.done_at, job });
    }
    crate::perf::note_events(completions);
    let window = end.since(warmup).as_secs();
    let stream_total: u64 =
        ants.iter().map(StreamAntagonist::bytes_done).sum::<u64>() - stream_base;
    FioRun {
        fio_bytes_per_sec: fio_bytes as f64 / window,
        stream_bytes_per_sec: stream_total as f64 / window,
    }
}

/// Runs the normalized Figure 15 point for `streams` antagonists.
pub fn run(streams: usize, octo: bool, sim_ms: u64) -> NvmeResult {
    let loaded = run_raw(streams, octo, sim_ms);
    let fio_alone = run_raw(0, octo, sim_ms).fio_bytes_per_sec;
    let stream_solo = run_raw_stream_solo(sim_ms);
    NvmeResult {
        streams,
        fio_normalized: loaded.fio_bytes_per_sec / fio_alone,
        stream_normalized: if streams == 0 {
            1.0
        } else {
            loaded.stream_bytes_per_sec / (streams as f64 * stream_solo)
        },
        fio_gbs: loaded.fio_bytes_per_sec / 1e9,
    }
}

/// Bandwidth of a single STREAM instance (reader + writer pair on their own
/// cores) running alone on the testbed.
pub fn run_raw_stream_solo(sim_ms: u64) -> f64 {
    let mut mem = MemSystem::new(MemConfig::dual_socket_skylake());
    let mut cores = Cores::new(mem.topology().total_cores());
    let (mut r, mut w) = StreamAntagonist::pair(0, 1, NodeId(1));
    let end = Time::from_ms(sim_ms);
    let mut tr = Time::ZERO;
    let mut tw = Time::ZERO;
    while tr < end || tw < end {
        if tr <= tw {
            tr = r.step(tr, &mut mem, &mut cores);
        } else {
            tw = w.step(tw, &mut mem, &mut cores);
        }
    }
    (r.bytes_done() + w.bytes_done()) as f64 / end.as_secs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_fio_degrades_under_upi_load() {
        let r5 = run(5, false, 8);
        assert!(
            r5.fio_normalized < 0.97,
            "fio under 5 STREAMs = {:.2} (paper ~0.76)",
            r5.fio_normalized
        );
        assert!(
            r5.fio_normalized > 0.5,
            "degradation bounded: {:.2}",
            r5.fio_normalized
        );
    }

    #[test]
    fn fig15_degradation_monotone_then_flat() {
        let r1 = run(1, false, 8);
        let r5 = run(5, false, 8);
        let r8 = run(8, false, 8);
        assert!(r1.fio_normalized >= r5.fio_normalized - 0.02);
        // "degrades by up to 24% after five instances ... then flat".
        assert!(
            (r8.fio_normalized - r5.fio_normalized).abs() < 0.15,
            "flat tail: {} vs {}",
            r5.fio_normalized,
            r8.fio_normalized
        );
    }

    #[test]
    fn fig15_stream_also_degrades() {
        let r8 = run(8, false, 8);
        assert!(
            r8.stream_normalized < 0.9,
            "STREAM shares the pain: {:.2}",
            r8.stream_normalized
        );
    }

    #[test]
    fn octossd_extension_immunizes_fio() {
        let fixed = run(5, false, 8);
        let octo = run(5, true, 8);
        assert!(
            octo.fio_normalized > fixed.fio_normalized,
            "OctoSSD {:.2} vs fixed-port {:.2}",
            octo.fio_normalized,
            fixed.fio_normalized
        );
        assert!(
            octo.fio_normalized > 0.9,
            "OctoSSD nearly flat: {:.2}",
            octo.fio_normalized
        );
    }

    #[test]
    fn fio_alone_saturates_drives() {
        // 4 drives × 3.2 GB/s ≈ 12.8 GB/s media bound.
        let r = run_raw(0, false, 8);
        let gbs = r.fio_bytes_per_sec / 1e9;
        assert!(gbs > 8.0 && gbs < 13.5, "fio alone = {gbs:.1} GB/s");
    }
}
