//! Chaos campaigns: generated fault schedules vs. the whole stack.
//!
//! The hand-written robustness experiment ([`super::failover`]) checks the
//! failure interleavings someone thought of; this harness checks the ones
//! nobody did. A campaign seed expands —
//! via [`simcore::campaign::plan_for`] — into an unbounded family of
//! deterministic fault schedules (bursts, overlaps, zero-gap flaps, orphan
//! recoveries, media errors), each of which is thrown at one of several
//! *experiment families*:
//!
//! * [`Family::RxStream`] — the netperf receive stream of Figure 7, the
//!   workload the failover experiment uses;
//! * [`Family::RequestResponse`] — the ping-pong latency workload, which
//!   keeps exactly one message in flight and so exercises the
//!   timeout/retry path rather than the windowed steady state;
//! * [`Family::KeyValue`] — the memcached connection, mixing GETs and
//!   SETs across both directions;
//! * [`Family::NvmeMedia`] — a dual-port drive fed synchronous reads
//!   while links flap and [`FaultKind::MediaFault`]s arm correctable and
//!   uncorrectable media errors.
//!
//! "Survived" means more than "did not panic": every run carries the
//! system-wide invariant audit (buffer-pool and descriptor-ring
//! conservation, socket accounting, PCIe transaction tallies, event-time
//! monotonicity — see [`simcore::audit`]) on a periodic tick plus a final
//! quiesce-point pass, and the campaign fails on any recorded violation.
//! When a schedule *does* trip the audit, [`shrink_failing`] minimizes it
//! with delta debugging to a locally minimal reproducer; the campaign seed
//! plus the shrunk plan is the bug report. [`sabotaged_run_trips_audit`]
//! wires a deliberately broken recovery path (a driver that leaks one Tx
//! kernel buffer per PF failure) to prove the audit actually catches
//! realistic recovery bugs and that the shrinker isolates them.

use kernel::NetdevId;
use memsys::{MemConfig, MemSystem, NodeId};
use nvme::{MediaConfig, PortPolicy, Ssd, SsdConfig};
use pcie::{FabricConfig, PcieFabric, PcieGen};
use simcore::campaign::{plan_for, shrink};
use simcore::{Audit, CampaignConfig, Dur, FaultKind, FaultPlan, Time};

use crate::config::{BuildOpts, Placement};
use crate::netloop::{make_kv, make_rr, make_rx_stream, App, NetLoop};
use crate::sweep;
use crate::system::build_duplex;

/// Simulated duration of one schedule run (covers the default 8 ms fault
/// horizon plus settling time).
pub const TOTAL: Dur = Dur::from_ms(10);
/// Periodic invariant-audit cadence during a run.
pub const AUDIT_EVERY: Dur = Dur::from_us(100);
/// Driver-watchdog cadence (same as the failover experiment).
pub const WATCHDOG_EVERY: Dur = Dur::from_us(50);
/// Read size used by the NVMe family.
const NVME_READ_BYTES: u64 = 128 * 1024;

/// The experiment families a campaign rotates through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Windowed netperf receive stream (the failover workload).
    RxStream,
    /// TCP_RR ping-pong: one message in flight, retries dominate.
    RequestResponse,
    /// memcached GET/SET mix.
    KeyValue,
    /// Dual-port NVMe drive under link flaps and media errors.
    NvmeMedia,
}

/// Round-robin order of families across schedule indices.
pub const FAMILIES: [Family; 4] = [
    Family::RxStream,
    Family::RequestResponse,
    Family::KeyValue,
    Family::NvmeMedia,
];

/// The family schedule `index` of any campaign runs against.
pub fn family_of(index: u64) -> Family {
    FAMILIES[(index % FAMILIES.len() as u64) as usize]
}

/// The campaign shape used by the bench harness and CI: two target PFs
/// (the octoNIC's endpoints / the drive's ports), media faults enabled so
/// the NVMe family sees them.
pub fn base_config(seed: u64) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(seed, 2);
    cfg.media_faults = true;
    cfg
}

/// Outcome of one schedule run.
#[derive(Debug, Clone)]
pub struct ScheduleReport {
    /// Which experiment family ran.
    pub family: Family,
    /// Schedule index within the campaign.
    pub index: u64,
    /// Fault events in the schedule.
    pub faults: usize,
    /// Simulation events dispatched (work units for the NVMe family).
    pub events: u64,
    /// Invariant checks evaluated.
    pub checks: u64,
    /// Recovery actions taken (watchdog IRQ recoveries, doorbell and
    /// steering-reinstall retries, NVMe command retries and IRQ-loss
    /// watchdog rescues).
    pub recoveries: u64,
    /// Stale-epoch completions and interrupts fenced — counted and
    /// discarded, never delivered (hotplug campaigns only).
    pub fenced: u64,
    /// Completed quiesce/drain/rebind reconfiguration sequences.
    pub reconfigs: u64,
    /// Rendered invariant violations; empty means the run survived.
    pub violations: Vec<String>,
}

/// Aggregate outcome of a whole campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The campaign seed.
    pub seed: u64,
    /// Schedules run.
    pub schedules: u64,
    /// Total fault events injected.
    pub faults: u64,
    /// Total simulation events dispatched.
    pub events: u64,
    /// Total invariant checks evaluated.
    pub checks: u64,
    /// Total recovery actions observed.
    pub recoveries: u64,
    /// Total stale-epoch completions/interrupts fenced.
    pub fenced: u64,
    /// Total quiesce/drain/rebind reconfigurations completed.
    pub reconfigs: u64,
    /// Violations across all schedules, prefixed `family[index]:`.
    pub violations: Vec<String>,
}

impl CampaignReport {
    /// Whether every schedule survived every invariant check.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs schedule `index` of the campaign: derives the plan, picks the
/// family by round-robin, runs it under audit.
pub fn run_schedule(cfg: &CampaignConfig, index: u64) -> ScheduleReport {
    let plan = plan_for(cfg, index);
    run_plan(family_of(index), index, &plan)
}

/// Runs one fault plan against one family under the invariant audit.
pub fn run_plan(family: Family, index: u64, plan: &FaultPlan) -> ScheduleReport {
    match family {
        Family::NvmeMedia => run_nvme(index, plan),
        _ => run_netloop(family, index, plan, TOTAL, false),
    }
}

/// Runs a whole campaign — `count` schedules fanned out over the worker
/// pool — returning every per-schedule report. Deterministic in `seed` and
/// `count`.
pub fn run_reports(seed: u64, count: u64) -> Vec<ScheduleReport> {
    run_reports_with(&base_config(seed), count)
}

/// [`run_reports`] for an arbitrary campaign shape.
pub fn run_reports_with(cfg: &CampaignConfig, count: u64) -> Vec<ScheduleReport> {
    sweep::sweep((0..count).collect(), |i| run_schedule(cfg, i))
}

/// The topology-churn campaign shape: [`base_config`] plus the hotplug
/// kinds, so schedules mix surprise removals and re-enumerations (often
/// paired) into the existing fault alphabet. The epoch fence, the drain,
/// and the legacy-NUDMA degraded mode all run under the same invariant
/// audit as every other campaign.
pub fn hotplug_config(seed: u64) -> CampaignConfig {
    let mut cfg = base_config(seed);
    cfg.hotplug = true;
    cfg
}

/// Runs a topology-churn campaign: `count` schedules of [`hotplug_config`].
pub fn run_hotplug_campaign(seed: u64, count: u64) -> CampaignReport {
    aggregate(seed, &run_reports_with(&hotplug_config(seed), count))
}

/// Folds per-schedule reports into a campaign summary.
pub fn aggregate(seed: u64, reports: &[ScheduleReport]) -> CampaignReport {
    let mut out = CampaignReport {
        seed,
        schedules: reports.len() as u64,
        faults: 0,
        events: 0,
        checks: 0,
        recoveries: 0,
        fenced: 0,
        reconfigs: 0,
        violations: Vec::new(),
    };
    for r in reports {
        out.faults += r.faults as u64;
        out.events += r.events;
        out.checks += r.checks;
        out.recoveries += r.recoveries;
        out.fenced += r.fenced;
        out.reconfigs += r.reconfigs;
        for v in &r.violations {
            out.violations
                .push(format!("{:?}[{}]: {v}", r.family, r.index));
        }
    }
    out
}

/// [`run_reports`] + [`aggregate`] in one call.
pub fn run_campaign(seed: u64, count: u64) -> CampaignReport {
    aggregate(seed, &run_reports(seed, count))
}

/// The three NetLoop-based families share one runner; `sabotage` arms the
/// deliberately broken recovery path on the server (test harnesses only).
fn run_netloop(
    family: Family,
    index: u64,
    plan: &FaultPlan,
    total: Dur,
    sabotage: bool,
) -> ScheduleReport {
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    if sabotage {
        duplex.server.debug_break_recovery();
    }
    let app = match family {
        // Core 0 is node 0, local to PF0 — the PF campaigns kill most.
        Family::RxStream => App::Rx(make_rx_stream(
            &mut duplex,
            0,
            0,
            NetdevId(0),
            65536,
            512 * 1024,
            4777,
        )),
        // Server on node 1 so requests cross the socket boundary whenever
        // PF1 is the one that dies.
        Family::RequestResponse => App::Rr(make_rr(
            &mut duplex,
            14,
            2,
            NetdevId(0),
            1024,
            usize::MAX,
            7001,
            false,
        )),
        Family::KeyValue => App::Kv(make_kv(
            &mut duplex,
            0,
            2,
            NetdevId(0),
            0.1,
            4096,
            6379,
            0x5eed ^ index,
        )),
        Family::NvmeMedia => unreachable!("dispatched to run_nvme"),
    };
    let mut nl = NetLoop::new(duplex);
    nl.add_app(app);
    nl.enable_audit(AUDIT_EVERY);
    nl.install_fault_plan(plan, WATCHDOG_EVERY);
    nl.start_apps(Time::ZERO);
    nl.run(Time::ZERO + total);
    nl.run_audit(); // quiesce-point pass even if the periodic tick lapsed
    let robust = nl.duplex.server.robustness();
    let events = nl.events_processed();
    let fenced = robust.fenced_completions + robust.fenced_irqs;
    crate::perf::note_events(events);
    crate::perf::note_audits(nl.audit.checks());
    crate::perf::note_fenced(fenced);
    crate::perf::note_reconfigs(robust.reconfigs);
    ScheduleReport {
        family,
        index,
        faults: plan.len(),
        events,
        checks: nl.audit.checks(),
        recoveries: robust.watchdog_irq_recoveries
            + robust.doorbell_retries
            + robust.steering_reinstalls
            + robust.steering_reinstall_retries,
        fenced,
        reconfigs: robust.reconfigs,
        violations: render(&nl.audit),
    }
}

/// Completion-watchdog timeout of the NVMe harness's host model: a
/// completion whose interrupt was lost is noticed this much later by the
/// polling watchdog (mirrors [`kernel::HostConfig::watchdog_timeout`]).
const NVME_WATCHDOG_TIMEOUT: Dur = Dur::from_us(100);

/// NVMe family: a dual-port drive on the Skylake testbed serving a
/// synchronous read loop while the plan flaps its links and arms media
/// errors. `PfFail`/`PfRecover` — NIC notions — are mapped to the
/// equivalent port-link faults. `IrqLoss` arms the same one-shot
/// lost-interrupt model the NIC uses: the next completion's MSI-X is
/// swallowed, the host notices it only when the completion watchdog polls,
/// and the rescue is counted — so campaigns exercise the watchdog path on
/// this family too instead of silently dropping the fault. Hotplug kinds
/// fall through to the fabric, which drops in-flight transactions on
/// removal and charges retrain latency on re-enumeration.
fn run_nvme(index: u64, plan: &FaultPlan) -> ScheduleReport {
    let mut mem = MemSystem::new(MemConfig::dual_socket_skylake());
    let mut fabric = PcieFabric::new(FabricConfig::default());
    let p0 = fabric.add_endpoint(NodeId(0), PcieGen::Gen3, 4);
    let p1 = fabric.add_endpoint(NodeId(1), PcieGen::Gen3, 4);
    let ports = [p0, p1];
    let mut ssd = Ssd::new(
        0,
        SsdConfig::new(MediaConfig::pm1725a(), PortPolicy::LocalToBuffer),
        vec![p0, p1],
        &mut mem,
        NodeId(1),
    );
    let buf = mem.alloc(NodeId(1), NVME_READ_BYTES);

    let end = Time::ZERO + TOTAL;
    let evs = plan.events();
    let mut next_ev = 0usize;
    let mut now = Time::ZERO;
    let (mut issued, mut ok, mut errored) = (0u64, 0u64, 0u64);
    // One-shot lost-interrupt state (the NIC's `inject_irq_loss` analogue):
    // arming while already armed stays one pending loss.
    let mut irq_loss_pending = false;
    let (mut irq_losses_armed, mut watchdog_rescues) = (0u64, 0u64);
    while now < end {
        while next_ev < evs.len() && evs[next_ev].at <= now {
            let e = &evs[next_ev];
            match e.kind {
                FaultKind::MediaFault { errors } => ssd.inject_media_fault(errors),
                FaultKind::PfFail => {
                    fabric.apply_link_fault(e.at, ports[e.pf % 2], FaultKind::LinkDown);
                }
                FaultKind::PfRecover => {
                    fabric.apply_link_fault(e.at, ports[e.pf % 2], FaultKind::LinkRecover);
                }
                FaultKind::IrqLoss => {
                    irq_losses_armed += 1;
                    irq_loss_pending = true;
                }
                k => {
                    fabric.apply_link_fault(e.at, ports[e.pf % 2], k);
                }
            }
            next_ev += 1;
        }
        let r = ssd.read(now, buf, NVME_READ_BYTES, &mut fabric, &mut mem);
        issued += 1;
        if r.error {
            errored += 1;
        } else {
            ok += 1;
        }
        let mut done_at = r.done_at;
        if irq_loss_pending {
            // The completion landed but its interrupt was swallowed: the
            // host observes it one watchdog period late, and the rescue is
            // charged as a recovery action.
            irq_loss_pending = false;
            watchdog_rescues += 1;
            done_at += NVME_WATCHDOG_TIMEOUT;
        }
        // A failed command's completion carries only its accumulated retry
        // delays; keep a floor so a hard-down link cannot stall the clock.
        now = done_at.max(now + Dur::from_us(5));
    }

    let mut audit = Audit::new();
    fabric.audit(&mut audit);
    let rb = ssd.robustness();
    // Command conservation, counted at independent sites: the harness
    // tallies issue-loop outcomes; the drive tallies its failure paths.
    audit.check(
        "nvme",
        "command-conservation",
        issued == ok + errored,
        || format!("issued {issued} != ok {ok} + errored {errored}"),
    );
    audit.check(
        "nvme",
        "failed-command-accounting",
        errored == rb.failed_commands,
        || {
            format!(
                "harness saw {errored} error completions, drive counted {}",
                rb.failed_commands
            )
        },
    );
    audit.check(
        "nvme",
        "retry-budget",
        rb.retries >= rb.failed_commands,
        || {
            format!(
                "{} commands failed but only {} retries were attempted",
                rb.failed_commands, rb.retries
            )
        },
    );
    audit.check(
        "nvme",
        "irq-rescue-accounting",
        watchdog_rescues <= irq_losses_armed,
        || {
            format!(
                "{watchdog_rescues} watchdog rescues but only \
                 {irq_losses_armed} interrupt losses were armed"
            )
        },
    );
    crate::perf::note_events(issued);
    crate::perf::note_audits(audit.checks());
    ScheduleReport {
        family: Family::NvmeMedia,
        index,
        faults: plan.len(),
        events: issued,
        checks: audit.checks(),
        recoveries: rb.retries + watchdog_rescues,
        fenced: 0,
        reconfigs: 0,
        violations: render(&audit),
    }
}

fn render(a: &Audit) -> Vec<String> {
    a.violations().iter().map(ToString::to_string).collect()
}

// ---- Sabotage self-test: prove the audit catches a real recovery bug ----

/// Schedule shape for sabotage hunts: short horizon so the shrinker's
/// repeated re-runs stay cheap.
pub fn sabotage_config(seed: u64) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(seed, 2);
    cfg.horizon = Dur::from_ms(2);
    cfg.faults_min = 4;
    cfg.faults_max = 10;
    cfg
}

/// Runs `plan` on a server whose PF-failure recovery deliberately leaks
/// one Tx kernel buffer per failure ([`kernel::Host::debug_break_recovery`])
/// and reports whether the invariant audit caught it. This is the
/// end-to-end proof that the audit layer detects recovery bugs rather than
/// merely counting checks — and the predicate [`shrink_failing`] minimizes
/// against.
pub fn sabotaged_run_trips_audit(plan: &FaultPlan) -> bool {
    // A light stream keeps the data path warm without making the ddmin
    // re-runs expensive; the leak is caught at the quiesce-point audit.
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    duplex.server.debug_break_recovery();
    let app = App::Rx(make_rx_stream(
        &mut duplex,
        0,
        0,
        NetdevId(0),
        16384,
        32 * 1024,
        4777,
    ));
    let mut nl = NetLoop::new(duplex);
    nl.add_app(app);
    nl.install_fault_plan(plan, WATCHDOG_EVERY);
    nl.start_apps(Time::ZERO);
    nl.run(Time::ZERO + Dur::from_ms(3));
    nl.run_audit();
    crate::perf::note_events(nl.events_processed());
    crate::perf::note_audits(nl.audit.checks());
    !nl.audit.ok()
}

/// Minimizes a schedule that trips [`sabotaged_run_trips_audit`] down to a
/// locally minimal reproducer (delta debugging; re-runs the simulation per
/// probe). The broken path leaks on `PfFail`, so the minimized plan is the
/// single fault that exposes the bug.
pub fn shrink_failing(plan: &FaultPlan) -> FaultPlan {
    shrink(plan, sabotaged_run_trips_audit)
}

/// Schedule shape for hotplug sabotage hunts: [`sabotage_config`] plus the
/// hotplug kinds with pairing forced on, so generated schedules reliably
/// contain complete remove→re-add cycles for the broken rebind path to
/// leak on.
pub fn hotplug_sabotage_config(seed: u64) -> CampaignConfig {
    let mut cfg = sabotage_config(seed);
    cfg.hotplug = true;
    cfg.pair_chance = 1.0;
    cfg
}

/// Runs `plan` on a server whose hotplug *rebind* path deliberately leaks
/// one Tx kernel buffer per completed re-enumeration
/// ([`kernel::Host::debug_break_readd`]) and reports whether the invariant
/// audit caught it. The leak only fires when the device epoch actually
/// advanced — which takes a `SurpriseRemove` *followed by* a `Reenumerate`
/// on the same PF — so the locally minimal reproducer
/// [`shrink_failing_readd`] converges to is exactly that pair, never a
/// single event.
pub fn sabotaged_readd_trips_audit(plan: &FaultPlan) -> bool {
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    duplex.server.debug_break_readd();
    let app = App::Rx(make_rx_stream(
        &mut duplex,
        0,
        0,
        NetdevId(0),
        16384,
        32 * 1024,
        4777,
    ));
    let mut nl = NetLoop::new(duplex);
    nl.add_app(app);
    nl.install_fault_plan(plan, WATCHDOG_EVERY);
    nl.start_apps(Time::ZERO);
    nl.run(Time::ZERO + Dur::from_ms(3));
    nl.run_audit();
    crate::perf::note_events(nl.events_processed());
    crate::perf::note_audits(nl.audit.checks());
    !nl.audit.ok()
}

/// Minimizes a schedule that trips [`sabotaged_readd_trips_audit`]. The
/// expected fixed point is a two-event plan: the remove that bumps the
/// epoch and the re-add whose rebind leaks.
pub fn shrink_failing_readd(plan: &FaultPlan) -> FaultPlan {
    shrink(plan, sabotaged_readd_trips_audit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_rotate_round_robin() {
        assert_eq!(family_of(0), Family::RxStream);
        assert_eq!(family_of(1), Family::RequestResponse);
        assert_eq!(family_of(2), Family::KeyValue);
        assert_eq!(family_of(3), Family::NvmeMedia);
        assert_eq!(family_of(4), Family::RxStream);
    }

    #[test]
    fn rx_schedule_survives_with_audits_running() {
        let cfg = base_config(0xc4a0);
        let r = run_schedule(&cfg, 0); // index 0 → RxStream
        assert_eq!(r.family, Family::RxStream);
        assert!(r.checks > 0, "audit must actually run");
        assert!(r.events > 1_000, "stream must actually flow: {}", r.events);
        assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
    }

    #[test]
    fn nvme_schedule_survives_media_and_link_faults() {
        let mut cfg = base_config(0xd15c);
        cfg.faults_min = 6; // dense enough to guarantee drive-visible faults
        cfg.faults_max = 12;
        let r = run_schedule(&cfg, 3); // index 3 → NvmeMedia
        assert_eq!(r.family, Family::NvmeMedia);
        // Under a dense fault plan each timed-out command eats ~1.5 ms of
        // retry backoff, so tens of reads in 10 ms is the expected shape.
        assert!(r.events >= 20, "reads issued: {}", r.events);
        assert!(r.checks > 0);
        assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
    }

    #[test]
    fn nvme_family_pays_for_injected_media_errors() {
        // A plan that is nothing but media faults must surface as retries.
        let plan = FaultPlan::new()
            .with(Time::from_ms(1), 0, FaultKind::MediaFault { errors: 2 })
            .with(Time::from_ms(2), 1, FaultKind::MediaFault { errors: 1 });
        let r = run_plan(Family::NvmeMedia, 0, &plan);
        assert!(r.recoveries >= 3, "3 injected errors: {}", r.recoveries);
        assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
    }

    #[test]
    fn hotplug_campaign_survives_with_churn_actually_exercised() {
        let sum = run_hotplug_campaign(0x407_0106, 8);
        assert!(sum.ok(), "violations: {:?}", sum.violations);
        assert_eq!(sum.schedules, 8);
        assert!(sum.checks > 0, "audit must actually run");
        assert!(
            sum.reconfigs >= 1,
            "campaign must contain at least one epoch-advancing hotplug \
             transition, got {} reconfigs across {} faults",
            sum.reconfigs,
            sum.faults
        );
    }

    #[test]
    fn sabotaged_readd_is_caught_and_shrinks_to_the_remove_readd_pair() {
        // Find a generated schedule containing a complete remove→re-add
        // cycle early enough to land inside the 3 ms sabotage-run window
        // (the broken rebind path leaks one Tx buffer per completed
        // re-enumeration).
        let cfg = hotplug_sabotage_config(0x05ee_d407);
        let plan = (0..64)
            .map(|i| plan_for(&cfg, i))
            .find(|p| {
                let evs = p.events();
                evs.iter().enumerate().any(|(j, e)| {
                    e.kind == FaultKind::SurpriseRemove
                        && evs[j + 1..].iter().any(|r| {
                            r.kind == FaultKind::Reenumerate
                                && r.pf == e.pf
                                && r.at < Time::ZERO + Dur::from_ms(3)
                        })
                })
            })
            .expect("campaign generates paired hotplug schedules");
        assert!(
            sabotaged_readd_trips_audit(&plan),
            "the audit must catch the rebind leak"
        );
        let min = shrink_failing_readd(&plan);
        // The leak needs the epoch to advance, which takes the full pair:
        // a lone Reenumerate is a no-op and a lone SurpriseRemove never
        // reaches the broken rebind path. ddmin's 1-minimality therefore
        // pins the reproducer to exactly two events.
        assert_eq!(
            min.len(),
            2,
            "minimal reproducer is the remove/re-add pair, got {:?}",
            min.events()
        );
        assert!(
            min.events()
                .iter()
                .any(|e| e.kind == FaultKind::SurpriseRemove),
            "{:?}",
            min.events()
        );
        assert!(
            min.events()
                .iter()
                .any(|e| e.kind == FaultKind::Reenumerate),
            "{:?}",
            min.events()
        );
        assert!(sabotaged_readd_trips_audit(&min), "reproducer still fails");
    }

    #[test]
    fn sabotaged_recovery_is_caught_and_shrinks_to_one_event() {
        // Find a generated schedule containing a PfFail (the sabotaged
        // path leaks one Tx buffer per PF failure).
        let cfg = sabotage_config(0xbad5eed);
        let (plan, _) = (0..32)
            .map(|i| (plan_for(&cfg, i), i))
            .find(|(p, _)| {
                p.events()
                    .iter()
                    .any(|e| e.kind == FaultKind::PfFail && e.at < Time::ZERO + Dur::from_ms(3))
            })
            .expect("campaign generates PfFail schedules");
        assert!(
            sabotaged_run_trips_audit(&plan),
            "the audit must catch the leak"
        );
        let min = shrink_failing(&plan);
        assert!(
            min.len() <= 3,
            "minimized to ≤3 events, got {}: {:?}",
            min.len(),
            min.events()
        );
        assert!(
            min.events().iter().any(|e| e.kind == FaultKind::PfFail),
            "the culprit PfFail survives shrinking: {:?}",
            min.events()
        );
        assert!(sabotaged_run_trips_audit(&min), "reproducer still fails");
    }
}
