//! Figure 8: single-core pktgen packet throughput, plus the §2.4
//! remote-completion-ring ablation.

use kernel::NetdevId;
use memsys::AccessKind;
use nic::FlowTuple;
use simcore::{OutBuf, Time};

use crate::config::{BuildOpts, Placement};
use crate::results::ThroughputResult;
use crate::system::build_duplex;

use super::{gbps, Window};

/// Runs single-core pktgen at `pkt_bytes`-byte packets.
///
/// `rings_device_local` reproduces the §2.4 experiment where the response
/// ring is "allocated locally to the device and remotely to the CPU",
/// which the paper found "yields only a marginal performance improvement
/// of up to 2%".
pub fn run(
    p: Placement,
    pkt_bytes: u64,
    sim_ms: u64,
    rings_device_local: bool,
) -> ThroughputResult {
    let mut duplex = build_duplex(
        p,
        BuildOpts {
            server_rings_device_local: rings_device_local,
            ..BuildOpts::default()
        },
    );
    let core = p.app_core();
    let node = duplex.server.mem.topology().node_of_core(core);
    let flow = FlowTuple::udp(0x0A00_0002, 9, 0x0A00_0001, 9);
    let pkt_buf = duplex.server.mem.alloc(node, 2048);
    // pktgen initializes the packet once; it stays hot in the local LLC.
    duplex
        .server
        .mem
        .cpu_write(Time::ZERO, node, pkt_buf, pkt_bytes, AccessKind::Stream);

    let w = Window::of_ms(sim_ms);
    let mut t = Time::ZERO;
    let mut packets: u64 = 0;
    let mut measured: u64 = 0;
    let mut counters_reset = false;
    let mut outs = OutBuf::new();
    while t < w.end {
        if !counters_reset && t >= w.warmup {
            duplex.server.mem.reset_counters();
            duplex.server.cores.reset_meters();
            measured = 0;
            counters_reset = true;
        }
        outs.clear();
        let done = duplex.server.pktgen_round(
            t,
            core,
            NetdevId(0),
            flow,
            pkt_buf,
            pkt_bytes,
            64,
            &mut outs,
        );
        packets += outs.len() as u64;
        measured += outs.len() as u64;
        assert!(done > t, "pktgen must make progress");
        t = done;
    }
    // Each pktgen round is one burst-sized batch of sim work; credit the
    // packets it pushed as this runner's event count.
    crate::perf::note_events(packets);
    let bytes = measured * pkt_bytes;
    ThroughputResult {
        config: p.label().to_string(),
        x: pkt_bytes as f64,
        throughput_gbps: gbps(bytes, w),
        membw_gbps: gbps(duplex.server.mem.counters().total_dram_bytes(), w),
        cpu_cores: 1.0,
        rate_per_sec: measured as f64 / w.secs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_local_beats_remote_by_per_packet_delta() {
        let local = run(Placement::Local, 64, 8, false);
        let remote = run(Placement::Remote, 64, 8, false);
        let ratio = local.rate_per_sec / remote.rate_per_sec;
        assert!(
            ratio > 1.15 && ratio < 1.7,
            "pktgen 64B local/remote = {ratio:.2} (paper 1.30–1.39)"
        );
        // The delta should be roughly one DRAM completion-entry read.
        let delta_ns = 1e9 / remote.rate_per_sec - 1e9 / local.rate_per_sec;
        assert!(
            (40.0..200.0).contains(&delta_ns),
            "per-packet delta = {delta_ns:.0} ns (paper ~80 ns)"
        );
    }

    #[test]
    fn fig8_octopus_matches_local() {
        let local = run(Placement::Local, 64, 6, false);
        let octo = run(Placement::Octopus, 64, 6, false);
        let ratio = octo.rate_per_sec / local.rate_per_sec;
        assert!((0.9..1.1).contains(&ratio), "octo/local = {ratio:.3}");
    }

    #[test]
    fn fig8_local_has_negligible_membw() {
        let local = run(Placement::Local, 1024, 6, false);
        assert!(
            local.membw_gbps < 0.2 * local.throughput_gbps,
            "local membw {:.2} vs tput {:.2}",
            local.membw_gbps,
            local.throughput_gbps
        );
        let remote = run(Placement::Remote, 1024, 6, false);
        assert!(
            remote.membw_gbps > 0.5 * remote.throughput_gbps,
            "remote membw {:.2} vs tput {:.2}",
            remote.membw_gbps,
            remote.throughput_gbps
        );
    }

    #[test]
    fn sec24_remote_ring_ablation_is_marginal() {
        // Placing the ring local to the device helps remote pktgen by no
        // more than a few percent (paper: "up to 2%").
        let normal = run(Placement::Remote, 64, 8, false);
        let dev_ring = run(Placement::Remote, 64, 8, true);
        let improvement = dev_ring.rate_per_sec / normal.rate_per_sec;
        assert!(
            (0.95..1.10).contains(&improvement),
            "remote-ring improvement = {improvement:.3} (paper ≤ 1.02)"
        );
    }
}
