//! Figures 6 and 7: single-core netperf TCP_STREAM receive / transmit.
//!
//! "In these tests, the process repeatedly receives (or transmits) a
//! fixed-size buffer from (or to) a TCP socket … both process and OS
//! networking activity run on a single core." (§5.1.1)

use kernel::NetdevId;
use simcore::Time;

use crate::config::{BuildOpts, Placement};
use crate::netloop::{make_rx_stream, make_tx_stream, App, NetLoop};
use crate::results::ThroughputResult;
use crate::system::build_duplex;

use super::{gbps, Window};

/// Telemetry artifacts harvested from a traced experiment run: the merged
/// trace set, the NUMA-locality ledger, and the per-run metric snapshot.
#[derive(Debug)]
pub struct RunTelemetry {
    /// Harvested tracer rings (NIC + kernel domains).
    pub trace: telemetry::TraceSet,
    /// The NIC's per-flow/per-PF DMA locality table.
    pub locality: telemetry::LocalityTable,
    /// Sorted per-run component metrics.
    pub metrics: telemetry::Snapshot,
}

/// Flight-recorder row capacity for the streaming experiments (flow × PF
/// cardinality is tiny; generous headroom regardless).
const FLIGHT_ROWS: usize = 64;

/// Runs single-core TCP Rx at `msg`-byte buffers for `sim_ms` simulated
/// milliseconds.
pub fn run_rx(p: Placement, msg: u64, sim_ms: u64) -> ThroughputResult {
    run_rx_inner(p, msg, sim_ms, None).0
}

/// [`run_rx`] with telemetry enabled: tracing into rings of `trace_cap`
/// records plus the NUMA-locality flight recorder.
pub fn run_rx_traced(
    p: Placement,
    msg: u64,
    sim_ms: u64,
    trace_cap: usize,
) -> (ThroughputResult, RunTelemetry) {
    let (r, t) = run_rx_inner(p, msg, sim_ms, Some(trace_cap));
    (r, t.expect("telemetry was enabled"))
}

fn run_rx_inner(
    p: Placement,
    msg: u64,
    sim_ms: u64,
    trace_cap: Option<usize>,
) -> (ThroughputResult, Option<RunTelemetry>) {
    let mut duplex = build_duplex(p, BuildOpts::default());
    let app = make_rx_stream(
        &mut duplex,
        p.app_core(),
        0,
        NetdevId(0),
        msg,
        512 * 1024,
        4242,
    );
    let mut nl = NetLoop::new(duplex);
    if let Some(cap) = trace_cap {
        nl.enable_tracing(cap);
        nl.enable_flight_recorder(FLIGHT_ROWS);
    }
    let i = nl.add_app(App::Rx(app));
    nl.start_apps(Time::ZERO);

    let w = Window::of_ms(sim_ms);
    nl.run(w.warmup);
    nl.duplex.server.mem.reset_counters();
    nl.duplex.server.cores.reset_meters();
    let base = match nl.app(i) {
        App::Rx(a) => a.consumed,
        _ => unreachable!(),
    };
    nl.run(w.end);
    crate::perf::note_events(nl.events_processed());
    let consumed = match nl.app(i) {
        App::Rx(a) => a.consumed - base,
        _ => unreachable!(),
    };
    let cores = nl.duplex.server.mem.topology().total_cores();
    let result = ThroughputResult {
        config: p.label().to_string(),
        x: msg as f64,
        throughput_gbps: gbps(consumed, w),
        membw_gbps: gbps(nl.duplex.server.mem.counters().total_dram_bytes(), w),
        cpu_cores: nl
            .duplex
            .server
            .cores
            .utilization_of(0..cores, w.warmup, w.end),
        rate_per_sec: consumed as f64 / msg as f64 / w.secs(),
    };
    let telem = harvest(&mut nl, trace_cap.is_some());
    (result, telem)
}

/// Runs single-core TCP Tx (TSO) at `msg`-byte buffers.
pub fn run_tx(p: Placement, msg: u64, sim_ms: u64) -> ThroughputResult {
    run_tx_inner(p, msg, sim_ms, None).0
}

/// [`run_tx`] with telemetry enabled (see [`run_rx_traced`]).
pub fn run_tx_traced(
    p: Placement,
    msg: u64,
    sim_ms: u64,
    trace_cap: usize,
) -> (ThroughputResult, RunTelemetry) {
    let (r, t) = run_tx_inner(p, msg, sim_ms, Some(trace_cap));
    (r, t.expect("telemetry was enabled"))
}

fn run_tx_inner(
    p: Placement,
    msg: u64,
    sim_ms: u64,
    trace_cap: Option<usize>,
) -> (ThroughputResult, Option<RunTelemetry>) {
    let mut duplex = build_duplex(p, BuildOpts::default());
    let app = make_tx_stream(&mut duplex, p.app_core(), 0, NetdevId(0), msg, 4242);
    let mut nl = NetLoop::new(duplex);
    if let Some(cap) = trace_cap {
        nl.enable_tracing(cap);
        nl.enable_flight_recorder(FLIGHT_ROWS);
    }
    let i = nl.add_app(App::Tx(app));
    nl.start_apps(Time::ZERO);

    let w = Window::of_ms(sim_ms);
    nl.run(w.warmup);
    nl.duplex.server.mem.reset_counters();
    nl.duplex.server.cores.reset_meters();
    let base = match nl.app(i) {
        App::Tx(a) => a.consumed,
        _ => unreachable!(),
    };
    nl.run(w.end);
    crate::perf::note_events(nl.events_processed());
    let consumed = match nl.app(i) {
        App::Tx(a) => a.consumed - base,
        _ => unreachable!(),
    };
    let cores = nl.duplex.server.mem.topology().total_cores();
    let result = ThroughputResult {
        config: p.label().to_string(),
        x: msg as f64,
        throughput_gbps: gbps(consumed, w),
        membw_gbps: gbps(nl.duplex.server.mem.counters().total_dram_bytes(), w),
        cpu_cores: nl
            .duplex
            .server
            .cores
            .utilization_of(0..cores, w.warmup, w.end),
        rate_per_sec: consumed as f64 / msg as f64 / w.secs(),
    };
    let telem = harvest(&mut nl, trace_cap.is_some());
    (result, telem)
}

/// Harvests the telemetry artifacts of a finished run, if enabled.
fn harvest(nl: &mut NetLoop, enabled: bool) -> Option<RunTelemetry> {
    if !enabled {
        return None;
    }
    Some(RunTelemetry {
        locality: nl.flight_table().expect("flight recorder was enabled"),
        metrics: nl.metrics_snapshot(),
        trace: nl.take_trace(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shape_local_beats_remote_at_large_msgs() {
        let local = run_rx(Placement::Local, 65536, 8);
        let remote = run_rx(Placement::Remote, 65536, 8);
        let ratio = local.throughput_gbps / remote.throughput_gbps;
        assert!(
            ratio > 1.1 && ratio < 1.6,
            "Rx 64K local/remote ratio = {ratio:.2} (paper ~1.26)"
        );
        // Paper: remote memory bandwidth ≈ 3x its throughput; local ≈ 0.
        assert!(
            remote.membw_gbps > 1.5 * remote.throughput_gbps,
            "remote membw {:.1} vs tput {:.1}",
            remote.membw_gbps,
            remote.throughput_gbps
        );
        assert!(
            local.membw_gbps < 0.5 * local.throughput_gbps,
            "local membw {:.1} vs tput {:.1}",
            local.membw_gbps,
            local.throughput_gbps
        );
    }

    #[test]
    fn fig6_octopus_matches_local() {
        let local = run_rx(Placement::Local, 65536, 8);
        let octo = run_rx(Placement::Octopus, 65536, 8);
        let ratio = octo.throughput_gbps / local.throughput_gbps;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "octo/local = {ratio:.3} (paper: identical)"
        );
    }

    #[test]
    fn fig6_single_core_is_cpu_bound() {
        let r = run_rx(Placement::Local, 65536, 8);
        assert!(r.cpu_cores > 0.85, "cpu = {:.2} cores", r.cpu_cores);
        assert!(r.cpu_cores < 1.3, "cpu = {:.2} cores", r.cpu_cores);
    }

    #[test]
    fn fig7_tx_throughputs_comparable() {
        let local = run_tx(Placement::Local, 65536, 8);
        let remote = run_tx(Placement::Remote, 65536, 8);
        let ratio = local.throughput_gbps / remote.throughput_gbps;
        assert!(
            (0.9..=1.15).contains(&ratio),
            "Tx local/remote = {ratio:.2} (paper: comparable)"
        );
        // Tx should far exceed Rx ("both configurations more than double
        // their throughput compared to the Rx workload").
        let rx = run_rx(Placement::Local, 65536, 8);
        assert!(local.throughput_gbps > 1.5 * rx.throughput_gbps);
    }

    #[test]
    fn fig7_remote_membw_tracks_throughput() {
        let remote = run_tx(Placement::Remote, 65536, 8);
        let ratio = remote.membw_gbps / remote.throughput_gbps;
        assert!(
            (0.6..=1.6).contains(&ratio),
            "remote Tx membw/tput = {ratio:.2} (paper ~1.0)"
        );
        let local = run_tx(Placement::Local, 65536, 8);
        assert!(
            local.membw_gbps < 0.4 * local.throughput_gbps,
            "local Tx membw {:.1} vs tput {:.1} (paper ~0)",
            local.membw_gbps,
            local.throughput_gbps
        );
    }
}
