//! One runner per figure of the paper's evaluation (§5).
//!
//! | Module | Paper figure |
//! |---|---|
//! | [`tcp_stream`] | Fig. 6 (Rx), Fig. 7 (Tx) |
//! | [`pktgen`] | Fig. 8, plus the §2.4 remote-ring ablation |
//! | [`tcp_rr`] | Fig. 9 |
//! | [`memcached`] | Fig. 10 |
//! | [`multicore`] | §5.1.1 multi-core throughput (described, not plotted) |
//! | [`congestion`] | Fig. 11 (throughput), Fig. 12 (latency) |
//! | [`colocation`] | Fig. 13 |
//! | [`migration`] | Fig. 14 |
//! | [`nvme_fio`] | Fig. 15, plus the OctoSSD extension |
//! | [`trends`] | Fig. 2 (motivation) |
//! | [`failover`] | robustness companion to Fig. 14 (fault injection) |
//! | [`chaos`] | generated fault-schedule campaigns + invariant audit |
//! | [`reconfig`] | hotplug churn: epoch-fenced IOctopus ⇄ legacy NUDMA |
//!
//! Every runner is deterministic for a given configuration and returns a
//! typed result; the `bench` crate's harnesses print them in the paper's
//! row/series format.

pub mod chaos;
pub mod colocation;
pub mod congestion;
pub mod failover;
pub mod memcached;
pub mod migration;
pub mod multicore;
pub mod nvme_fio;
pub mod pktgen;
pub mod reconfig;
pub mod tcp_rr;
pub mod tcp_stream;
pub mod trends;

use crate::results::PfSample;
use simcore::Time;

/// A measurement window: metrics are captured between `warmup` and `end`.
#[derive(Debug, Clone, Copy)]
pub struct Window {
    /// Counters reset here.
    pub warmup: Time,
    /// Measurement stops here.
    pub end: Time,
}

impl Window {
    /// A window covering the last 3/4 of `total_ms` milliseconds.
    pub fn of_ms(total_ms: u64) -> Self {
        Window {
            warmup: Time::from_ms(total_ms / 4),
            end: Time::from_ms(total_ms),
        }
    }

    /// Window length in seconds.
    pub fn secs(&self) -> f64 {
        self.end.since(self.warmup).as_secs()
    }
}

/// Converts a byte count over the window to Gb/s.
pub fn gbps(bytes: u64, w: Window) -> f64 {
    bytes as f64 * 8.0 / 1e9 / w.secs()
}

/// Converts a cumulative per-PF `(time, [(rx, tx); 2])` sample trace (as
/// collected by `NetLoop::enable_sampling`) into per-interval throughput
/// rates on the presentation axis (sample time in milliseconds).
pub fn pf_rates(samples: &[(Time, Vec<(u64, u64)>)]) -> Vec<PfSample> {
    let mut out = Vec::new();
    let mut prev: Option<&(Time, Vec<(u64, u64)>)> = None;
    for cur in samples {
        if let Some(p) = prev {
            let dt = cur.0.since(p.0).as_secs();
            if dt > 0.0 {
                let rate = |i: usize| {
                    let c = cur.1[i].0 + cur.1[i].1;
                    let o = p.1[i].0 + p.1[i].1;
                    (c - o) as f64 * 8.0 / 1e9 / dt
                };
                out.push(PfSample {
                    t_secs: cur.0.as_ms(),
                    pf0_gbps: rate(0),
                    pf1_gbps: rate(1),
                });
            }
        }
        prev = Some(cur);
    }
    out
}
