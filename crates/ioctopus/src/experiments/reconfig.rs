//! Hotplug reconfiguration: epoch-fenced transitions between uniform
//! IOctopus mode and legacy NUDMA mode.
//!
//! The failover experiment ([`super::failover`]) kills a *function*
//! (`PfFail`) and revives it in place; this one removes the *device*:
//! PF0 is surprise-removed from the PCIe fabric mid-stream (its endpoint
//! vanishes, in-flight transactions die, the device epoch advances) and
//! later re-enumerated (slot power-up, link retrain, fresh epoch). The
//! driver runs each transition as a three-phase quiesce/drain/rebind
//! sequence behind the epoch fence:
//!
//! * **down** — the firmware's MPFS failover resteers PF0's flows to the
//!   surviving PF at the removal instant; landed-but-unconsumed
//!   completions from the dead instance are drained and *fenced* (counted,
//!   resources reclaimed, never delivered); the system degrades to legacy
//!   NUDMA mode, where every DMA for the node-0 application crosses the
//!   interconnect via PF1 — degraded but alive;
//! * **up** — re-enumeration bumps the epoch again, the drain fences any
//!   stragglers that landed during the outage, the rings rebind, steering
//!   reinstalls, and the stream returns home to uniform IOctopus mode.
//!
//! The emitted timeline and counters quantify the contract: transition
//! latency at sampling resolution, the degraded-mode throughput ratio,
//! how much stale work the fence discarded, and that *nothing* stale was
//! ever delivered (the audit would catch it).

use kernel::NetdevId;
use simcore::{Dur, FaultKind, FaultPlan, Time};

use crate::config::{BuildOpts, Placement};
use crate::experiments::pf_rates;
use crate::netloop::{make_rx_stream, App, NetLoop};
use crate::results::{LocalityWindow, PfSample, ReconfigResult};
use crate::system::build_duplex;

/// Total simulated duration.
pub const TOTAL: Dur = Dur::from_ms(10);
/// PF0 is surprise-removed here.
pub const REMOVE_AT: Dur = Dur::from_ms(3);
/// PF0 re-enumerates here (plus the fabric's 20 µs retrain stall).
pub const READD_AT: Dur = Dur::from_ms(6);
/// Per-PF throughput sampling interval.
pub const SAMPLE_EVERY: Dur = Dur::from_us(50);
/// Driver-watchdog cadence while faults are in play.
pub const WATCHDOG_EVERY: Dur = Dur::from_us(50);

/// A PF "carries the stream" once its sampled rate crosses this floor
/// (Gb/s); transition latency is measured to the first such sample.
const CARRY_FLOOR: f64 = 0.1;

/// Runs one full remove → NUDMA → re-add cycle against the Figure 7
/// receive stream on the octoNIC.
pub fn run() -> ReconfigResult {
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    // The workload lives on core 0 (node 0), local to the PF that vanishes.
    let app = make_rx_stream(&mut duplex, 0, 0, NetdevId(0), 65536, 512 * 1024, 4777);
    let mut nl = NetLoop::new(duplex);
    let i = nl.add_app(App::Rx(app));
    nl.enable_sampling(SAMPLE_EVERY);
    nl.enable_flight_recorder(16);
    let mut plan = FaultPlan::new();
    plan.push(Time::ZERO + REMOVE_AT, 0, FaultKind::SurpriseRemove);
    plan.push(Time::ZERO + READD_AT, 0, FaultKind::Reenumerate);
    nl.install_fault_plan(&plan, WATCHDOG_EVERY);
    nl.start_apps(Time::ZERO);
    // Pause at the phase boundaries to read the flight recorder and the
    // interconnect meter; windowed differences expose the NUDMA interval.
    let at_start = pause(&nl);
    nl.run(Time::ZERO + REMOVE_AT);
    let at_remove = pause(&nl);
    nl.run(Time::ZERO + READD_AT);
    let at_readd = pause(&nl);
    nl.run(Time::ZERO + TOTAL);
    crate::perf::note_events(nl.events_processed());
    let at_end = pause(&nl);
    let locality = at_end.table.clone();

    let consumed = match nl.app(i) {
        App::Rx(a) => a.consumed,
        _ => unreachable!(),
    };
    let samples = pf_rates(&nl.samples);
    let robust = nl.duplex.server.robustness();
    let nic = nl.duplex.server.nic.counters();
    crate::perf::note_fenced(robust.fenced_completions + robust.fenced_irqs);
    crate::perf::note_reconfigs(robust.reconfigs);

    let remove_ms = REMOVE_AT.as_secs() * 1e3;
    let readd_ms = READD_AT.as_secs() * 1e3;
    let healthy = mean_total(&samples, 1.0, remove_ms - 0.1);
    let degraded = mean_pf1(&samples, remove_ms + 0.3, readd_ms - 0.2);
    let recovered = mean_total(&samples, readd_ms + 1.0, 9.5);
    ReconfigResult {
        config: "octoNIC".to_string(),
        remove_to_survivor_us: latency_us(&samples, remove_ms, |s| s.pf1_gbps),
        readd_to_home_us: latency_us(&samples, readd_ms, |s| s.pf0_gbps),
        degraded_ratio: if healthy > 0.0 {
            degraded / healthy
        } else {
            0.0
        },
        recovered_ratio: if healthy > 0.0 {
            recovered / healthy
        } else {
            0.0
        },
        samples,
        fenced_completions: robust.fenced_completions,
        fenced_irqs: robust.fenced_irqs,
        reconfigs: robust.reconfigs,
        nudma_entries: robust.nudma_entries,
        nudma_exits: robust.nudma_exits,
        dropped_pf_dead: nic.dropped_pf_dead,
        resteered_flows: nic.resteered_flows,
        consumed,
        locality_healthy: window(&at_start, &at_remove),
        locality_nudma: window(&at_remove, &at_readd),
        locality_recovered: window(&at_readd, &at_end),
        locality,
    }
}

/// Cumulative telemetry reading at one pause point of the segmented run.
struct Pause {
    table: telemetry::LocalityTable,
    interconnect_bytes: u64,
}

fn pause(nl: &NetLoop) -> Pause {
    Pause {
        table: nl.flight_table().expect("flight recorder enabled"),
        interconnect_bytes: nl.duplex.server.mem.counters().interconnect_bytes,
    }
}

/// Windowed difference between two pause points.
fn window(from: &Pause, to: &Pause) -> LocalityWindow {
    LocalityWindow {
        dma: to.table.totals.since(&from.table.totals),
        home_pf: to.table.pf_cells(0).since(&from.table.pf_cells(0)),
        survivor_pf: to.table.pf_cells(1).since(&from.table.pf_cells(1)),
        interconnect_bytes: to.interconnect_bytes - from.interconnect_bytes,
    }
}

/// Time (µs past `from_ms`) of the first sample at/after `from_ms` whose
/// selected PF rate crosses [`CARRY_FLOOR`]; `f64::INFINITY` if none does.
fn latency_us(samples: &[PfSample], from_ms: f64, rate: impl Fn(&PfSample) -> f64) -> f64 {
    samples
        .iter()
        .find(|s| s.t_secs >= from_ms && rate(s) > CARRY_FLOOR)
        .map_or(f64::INFINITY, |s| (s.t_secs - from_ms) * 1e3)
}

/// Mean total (PF0+PF1) throughput over samples with `t` in `[a_ms, b_ms)`.
fn mean_total(samples: &[PfSample], a_ms: f64, b_ms: f64) -> f64 {
    mean_by(samples, a_ms, b_ms, |s| s.pf0_gbps + s.pf1_gbps)
}

/// Mean PF1 throughput over the window (the survivor's share).
fn mean_pf1(samples: &[PfSample], a_ms: f64, b_ms: f64) -> f64 {
    mean_by(samples, a_ms, b_ms, |s| s.pf1_gbps)
}

fn mean_by(samples: &[PfSample], a_ms: f64, b_ms: f64, f: impl Fn(&PfSample) -> f64) -> f64 {
    let sel: Vec<f64> = samples
        .iter()
        .filter(|s| s.t_secs >= a_ms && s.t_secs < b_ms)
        .map(f)
        .collect();
    if sel.is_empty() {
        return 0.0;
    }
    sel.iter().sum::<f64>() / sel.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cycle_degrades_gracefully_and_restores_uniform_mode() {
        let r = run();
        // One complete cycle: down into NUDMA, back up to uniform mode,
        // each transition a fenced reconfiguration.
        assert_eq!(r.reconfigs, 2, "both transitions completed");
        assert_eq!(r.nudma_entries, 1);
        assert_eq!(r.nudma_exits, 1);
        assert!(r.resteered_flows >= 1, "firmware moved the flow");
        // Degraded but alive: the survivor carries a useful fraction of
        // the healthy rate through the outage...
        assert!(
            r.degraded_ratio > 0.05,
            "NUDMA mode stays alive: {:.3}",
            r.degraded_ratio
        );
        // ...and the service is whole again after the re-add.
        assert!(
            (r.recovered_ratio - 1.0).abs() < 0.05,
            "throughput returns within 5%: {:.3}",
            r.recovered_ratio
        );
        // Transitions are fast at sampling resolution.
        assert!(
            r.remove_to_survivor_us < 500.0,
            "failover latency: {} µs",
            r.remove_to_survivor_us
        );
        assert!(
            r.readd_to_home_us < 1000.0,
            "restore latency: {} µs",
            r.readd_to_home_us
        );
        assert!(r.consumed > 0);
    }

    #[test]
    fn flight_ledger_exposes_the_nudma_window() {
        let r = run();
        let h = &r.locality_healthy;
        let n = &r.locality_nudma;
        let v = &r.locality_recovered;
        // Healthy window: uniform IOctopus mode — the home PF carries
        // everything, every DMA byte stays node-local.
        assert!(h.dma.local_bytes() > 0);
        assert_eq!(h.dma.remote_bytes(), 0, "uniform mode: no remote DMA");
        assert_eq!(
            h.survivor_pf.local_bytes() + h.survivor_pf.remote_bytes(),
            0
        );
        // Outage window: the ledger shows the flow living on the survivor
        // PF (the home PF's rows stop moving)...
        let n_total = n.dma.local_bytes() + n.dma.remote_bytes();
        let n_survivor = n.survivor_pf.local_bytes() + n.survivor_pf.remote_bytes();
        assert!(n_total > 0, "stream stayed alive through the outage");
        assert!(
            n_survivor as f64 > 0.99 * n_total as f64,
            "survivor carries the NUDMA window: {n_survivor}/{n_total}"
        );
        // ...and the node-0 application pays for its node-1 buffers on the
        // CPU side: interconnect traffic is an order of magnitude above
        // the healthy window's.
        assert!(
            n.interconnect_bytes > 10 * h.interconnect_bytes.max(1),
            "NUDMA interconnect {} vs healthy {}",
            n.interconnect_bytes,
            h.interconnect_bytes
        );
        // Recovered window: the home PF dominates again and the
        // interconnect rate falls back (windows are 3 ms / 4 ms wide).
        let v_total = v.dma.local_bytes() + v.dma.remote_bytes();
        let v_home = v.home_pf.local_bytes() + v.home_pf.remote_bytes();
        assert!(
            v_home as f64 > 0.7 * v_total as f64,
            "home PF carries the recovered window: {v_home}/{v_total}"
        );
        assert!(
            v.interconnect_bytes / 4 < n.interconnect_bytes / 6,
            "interconnect rate halves after restore: {} vs {}",
            v.interconnect_bytes,
            n.interconnect_bytes
        );
        // The full-run table shows the flow's footprint on both PFs.
        assert!(
            r.locality.rows.iter().any(|row| row.pf == 0)
                && r.locality.rows.iter().any(|row| row.pf == 1),
            "ledger has rows on both PFs:\n{}",
            r.locality.render()
        );
        assert_eq!(r.locality.overflow_rows, 0);
    }

    #[test]
    fn reconfig_is_deterministic() {
        let a = run();
        let b = run();
        assert_eq!(a.samples.len(), b.samples.len());
        for (sa, sb) in a.samples.iter().zip(&b.samples) {
            assert_eq!(sa.pf0_gbps.to_bits(), sb.pf0_gbps.to_bits());
            assert_eq!(sa.pf1_gbps.to_bits(), sb.pf1_gbps.to_bits());
        }
        assert_eq!(a.fenced_completions, b.fenced_completions);
        assert_eq!(a.fenced_irqs, b.fenced_irqs);
        assert_eq!(a.consumed, b.consumed);
    }
}
