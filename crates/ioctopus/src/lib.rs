//! # IOctopus — the core crate of the reproduction
//!
//! The paper's contribution is a *device architecture*: a NIC (or SSD)
//! whose physical functions — one per CPU socket — are unified into a
//! single logical device, with firmware (IOctoRFS) steering every flow to
//! the PF local to the consuming thread. This crate assembles the full
//! simulated machines from the substrate crates ([`memsys`], [`pcie`],
//! [`nic`], [`kernel`], [`nvme`], [`workloads`]) and exposes:
//!
//! * [`config`] — experiment configuration: NIC [`Placement`]
//!   (`Local` / `Remote` / `Octopus`), DDIO mode, machine presets;
//! * [`system`] — machine assembly: the server (with a bifurcated
//!   two-PF NIC) and the client (conventional single-PF NIC), wired
//!   back-to-back;
//! * [`netloop`] — the discrete-event loop driving netperf-style, RR, and
//!   key-value applications over the two hosts;
//! * [`experiments`] — one runner per figure of the paper's evaluation
//!   (§5), each returning a typed, serializable result;
//! * [`results`] — the result types the bench harnesses print.
//!
//! ## Quick start
//!
//! ```
//! use ioctopus::config::Placement;
//! use ioctopus::experiments::tcp_stream;
//!
//! // Single-core TCP Rx at 64 KiB messages, octoNIC vs. remote NIC:
//! let octo = tcp_stream::run_rx(Placement::Octopus, 65536, 4);
//! let remote = tcp_stream::run_rx(Placement::Remote, 65536, 4);
//! assert!(octo.throughput_gbps > remote.throughput_gbps);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod experiments;
pub mod netloop;
pub mod params;
pub mod perf;
pub mod results;
pub mod sweep;
pub mod system;

pub use config::{DdioMode, Placement};
pub use system::{Duplex, Side};
