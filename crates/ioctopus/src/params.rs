//! The calibration story: every constant in the model, where it lives, and
//! which paper statement it reflects.
//!
//! The model is mechanistic — figures emerge from cache states, DMA
//! placement, and link queueing — but mechanistic models still need cost
//! constants. They are defined next to the hardware they describe and
//! documented here in one place:
//!
//! | Constant | Value | Where | Paper basis |
//! |---|---|---|---|
//! | LLC capacity/ways/DDIO ways | 35 MiB / 20 / 2 | [`memsys::LlcConfig::broadwell_14c`] | E5-2660 v4 datasheet; DDIO uses 2 ways |
//! | DRAM bandwidth/latency | 76.8 GB/s, 85 ns | `memsys::dram::DramConfig::ddr4_broadwell` | 4×16 GB DDR4 DIMMs per socket (§5) |
//! | QPI bandwidth/latency | 28.8 GB/s eff., 55 ns | `memsys::interconnect::InterconnectConfig::qpi_broadwell_2links` | "two 9.6 GT/s QPI links" (§5), ~75% protocol efficiency |
//! | UPI bandwidth | 31.2 GB/s eff. | `...::upi_skylake_2links` | "two 10.4 GT/s UPI links" (§5.4) |
//! | Single-thread stream bound | 8–9 GB/s | [`memsys::MemConfig`] | line-fill-buffer × latency bound of one core |
//! | Stream latency exposure | 45 % | [`memsys::MemConfig::stream_overlap`] | prefetchers hide most, not all, of a streaming miss |
//! | PCIe Gen3 x8 / x16 | 7.88 / 15.75 GB/s | [`pcie::PcieGen`] | "16 PCIe lanes are bifurcated into two 8-lane buses" (§4.1) |
//! | TLP overhead | 24 B per 256 B | `pcie::link` | PCIe transaction-layer framing |
//! | Wire | 100 GbE + 38 B framing, 600 ns | `nic::wire` | back-to-back ConnectX (§5) |
//! | NIC engine occupancy | 10 ns/desc | [`nic::NicConfig`] | 100 GbE line rate at 64 B packets |
//! | Interrupt moderation | 8 µs (0 for latency runs) | [`nic::NicConfig::irq_delay`] | "Linux adaptive interrupt coalescing is enabled" / "we disable adaptive interrupt coalescing" (§5) |
//! | Syscall / msg / pkt / irq costs | 180/170/230/600 ns | [`kernel::CpuCosts::broadwell_linux414`] | calibrated so local Rx ≈ 20 Gb/s, Tx ≈ 47–54 Gb/s, pktgen ≈ 4.8 Mpps (paper: 22 / 47 / 4.1) |
//! | copy_to/from_user issue rate | 8 GB/s | [`kernel::CpuCosts`] | single-core `rep movsb` on 2.0 GHz Broadwell |
//! | pktgen loop | 110 ns | [`kernel::CpuCosts`] | paper's 244 ns/pkt local total (§5.1.1) minus descriptor/completion work |
//! | Flash media | 3.2 GB/s, 90 µs | [`nvme::MediaConfig::pm1725a`] | PM1725a-class drives (§5.4) |
//! | NVMe transfer buffer | 4 slots | `nvme::ssd::XFER_BUFFER_SLOTS` | controller-internal buffering; what lets UPI congestion throttle flash |
//!
//! The headline calibration targets (local configuration, single core):
//!
//! * TCP Rx 64 KiB ≈ 20 Gb/s (paper ~22), remote ratio ≈ 1.31 (paper 1.26);
//! * TCP Tx TSO ≈ 54 Gb/s (paper ~47), remote == local, remote membw ≈ 1.0×
//!   throughput (paper: equal);
//! * pktgen ≈ 4.8 Mpps local / 3.6 remote (paper 4.1 / 3.08), per-packet
//!   delta ≈ 70 ns (paper ~80 ns — "reading this entry from memory costs
//!   about 80 ns").

pub use kernel::CpuCosts;
pub use memsys::MemConfig;
pub use nic::NicConfig;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_anchors_hold() {
        // The constants this module documents must stay wired to the values
        // the docs claim; this test pins the load-bearing ones.
        let costs = CpuCosts::broadwell_linux414();
        assert_eq!(costs.memcpy_bytes_per_sec, 8_000_000_000);
        let mem = MemConfig::dual_socket_broadwell();
        assert_eq!(mem.llc.ddio_ways, 2);
        assert_eq!(mem.interconnect.bytes_per_sec, 28_800_000_000);
        let nic = NicConfig::octonic_100g();
        assert_eq!(nic.mtu, 1500);
    }
}
