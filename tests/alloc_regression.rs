//! Allocation-regression gate for the event hot path.
//!
//! The dispatch loop recycles its out-buffer, batch vector, and TX scratch;
//! the queue, rings, and socket buffers reach a steady footprint during
//! warmup. After that, running more simulated time must perform **zero**
//! heap allocations — this test installs a counting global allocator and
//! holds the line. If it starts failing, something on the hot path regained
//! a per-event `Vec`/`Box`.
//!
//! Single test in this binary on purpose: the allocator counter is
//! process-wide, and a lone test keeps the measurement window quiet.

use ioctopus::config::{BuildOpts, Placement};
use ioctopus::netloop::{make_rx_stream, App, NetLoop};
use ioctopus::system::build_duplex;
use simcore::alloc_count::{allocation_count, CountingAlloc};
use simcore::Time;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_rx_stream_allocates_nothing() {
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    let app = make_rx_stream(
        &mut duplex,
        0,
        0,
        kernel::NetdevId(0),
        16384,
        512 * 1024,
        4242,
    );
    let mut nl = NetLoop::new(duplex);
    let i = nl.add_app(App::Rx(app));
    nl.start_apps(Time::ZERO);

    // Warm every recycled capacity: out-buffers, batch, queue buckets,
    // ring scratch, socket buffers.
    nl.run(Time::from_ms(8));
    let warm_events = nl.events_processed();
    let warm_consumed = match nl.app(i) {
        App::Rx(a) => a.consumed,
        _ => unreachable!(),
    };
    assert!(warm_events > 1000, "warmup must exercise the hot path");

    // On failure: re-run with `trap_allocations(true, N)` armed here to get
    // stderr backtraces for the first N offending call sites.
    let before = allocation_count();
    nl.run(Time::from_ms(14));
    let allocs = allocation_count() - before;

    let events = nl.events_processed() - warm_events;
    let consumed = match nl.app(i) {
        App::Rx(a) => a.consumed,
        _ => unreachable!(),
    };
    assert!(
        consumed > warm_consumed,
        "measurement window must stream data"
    );
    assert!(events > 5_000, "measurement window too small: {events}");
    assert_eq!(
        allocs,
        0,
        "steady-state dispatch must not allocate: {allocs} allocations over {events} events \
         ({:.4} allocs/event)",
        allocs as f64 / events as f64
    );
}
