//! Reproducibility: every experiment is bit-for-bit deterministic for a
//! given configuration — a property the whole figure-regeneration pipeline
//! rests on.

use ioctopus::config::Placement;
use ioctopus::experiments::{failover, memcached, nvme_fio, pktgen, tcp_rr, tcp_stream};

#[test]
fn tcp_stream_is_deterministic() {
    let a = tcp_stream::run_rx(Placement::Octopus, 16384, 4);
    let b = tcp_stream::run_rx(Placement::Octopus, 16384, 4);
    assert_eq!(a.throughput_gbps.to_bits(), b.throughput_gbps.to_bits());
    assert_eq!(a.membw_gbps.to_bits(), b.membw_gbps.to_bits());
    assert_eq!(a.cpu_cores.to_bits(), b.cpu_cores.to_bits());
}

#[test]
fn pktgen_is_deterministic() {
    let a = pktgen::run(Placement::Remote, 256, 4, false);
    let b = pktgen::run(Placement::Remote, 256, 4, false);
    assert_eq!(a.rate_per_sec.to_bits(), b.rate_per_sec.to_bits());
}

#[test]
fn rr_is_deterministic() {
    let a = tcp_rr::run(tcp_rr::RrConfig::Ll, 512, 30);
    let b = tcp_rr::run(tcp_rr::RrConfig::Ll, 512, 30);
    assert_eq!(a.mean_us.to_bits(), b.mean_us.to_bits());
    assert_eq!(a.p99_us.to_bits(), b.p99_us.to_bits());
}

#[test]
fn memcached_is_deterministic_per_seed() {
    let a = memcached::run(Placement::Octopus, 0.3, 6);
    let b = memcached::run(Placement::Octopus, 0.3, 6);
    assert_eq!(a.rate_per_sec.to_bits(), b.rate_per_sec.to_bits());
}

#[test]
fn failover_is_deterministic() {
    // Fault injection must not cost reproducibility: the plan's events run
    // through the same queue as everything else, so two identical runs
    // produce bit-identical per-PF rate curves and recovery counters.
    let a = failover::run(true);
    let b = failover::run(true);
    assert_eq!(a.samples.len(), b.samples.len());
    for (sa, sb) in a.samples.iter().zip(&b.samples) {
        assert_eq!(sa.t_secs.to_bits(), sb.t_secs.to_bits());
        assert_eq!(sa.pf0_gbps.to_bits(), sb.pf0_gbps.to_bits());
        assert_eq!(sa.pf1_gbps.to_bits(), sb.pf1_gbps.to_bits());
    }
    assert_eq!(a.resteered_flows, b.resteered_flows);
    assert_eq!(a.error_completions, b.error_completions);
    assert_eq!(a.watchdog_recoveries, b.watchdog_recoveries);
    assert_eq!(a.consumed, b.consumed);
}

#[test]
fn nvme_is_deterministic() {
    let a = nvme_fio::run_raw(3, false, 4);
    let b = nvme_fio::run_raw(3, false, 4);
    assert_eq!(a.fio_bytes_per_sec.to_bits(), b.fio_bytes_per_sec.to_bits());
    assert_eq!(
        a.stream_bytes_per_sec.to_bits(),
        b.stream_bytes_per_sec.to_bits()
    );
}
