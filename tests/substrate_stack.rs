//! Cross-crate substrate integration: memsys + pcie + nic driven directly
//! (no kernel, no event loop) — the DMA-placement contract the whole paper
//! rests on, exercised at the component boundary.

use memsys::{AccessKind, MemConfig, MemSystem, NodeId};
use nic::{FlowTuple, MacAddr, Nic, NicConfig, QueueConfig, RxDesc, RxOutcome, SteeringMode};
use pcie::{Bifurcation, FabricConfig, PcieFabric, PcieGen, PfId};
use simcore::{SimRng, Time};

struct Stack {
    mem: MemSystem,
    fab: PcieFabric,
    nic: Nic,
    pfs: Vec<PfId>,
}

fn stack(mode: SteeringMode) -> Stack {
    let mut mem = MemSystem::new(MemConfig::dual_socket_broadwell());
    let mut fab = PcieFabric::new(FabricConfig::default());
    let pfs = fab.add_bifurcated(&Bifurcation::x8x8_dual_socket(PcieGen::Gen3));
    let cfg = if mode == SteeringMode::FlowBased {
        NicConfig::octonic_100g()
    } else {
        NicConfig::standard_100g()
    };
    let mut nic = Nic::new(cfg, 2, pfs[0]);
    for (qi, &pf) in pfs.iter().enumerate() {
        let node = NodeId(qi);
        let mk = |mem: &mut MemSystem| mem.alloc(node, 64 * 1024);
        let (tx, txc, rx, rxc) = (mk(&mut mem), mk(&mut mem), mk(&mut mem), mk(&mut mem));
        let q = nic.attach_queue(
            QueueConfig {
                pf,
                irq_core: qi * 14,
                node,
            },
            tx,
            txc,
            rx,
            rxc,
        );
        for _ in 0..64 {
            let buf = mem.alloc(node, 2048);
            nic.post_rx(
                q,
                RxDesc {
                    addr: buf,
                    len: 2048,
                },
            )
            .unwrap();
        }
    }
    nic.mpfs_mut().register_mac(MacAddr::local_admin(0), pfs[0]);
    nic.mpfs_mut().register_mac(MacAddr::local_admin(1), pfs[1]);
    Stack { mem, fab, nic, pfs }
}

#[test]
fn octonic_rx_via_local_pf_produces_zero_dram_traffic() {
    let mut s = stack(SteeringMode::FlowBased);
    let flow = FlowTuple::tcp(1, 1, 2, 2);
    // Steer the flow to the node-1 PF and its node-1 queue.
    s.nic.mpfs_mut().install_flow(flow, s.pfs[1]);
    s.nic
        .arfs_install(Time::ZERO, s.pfs[1], flow, nic::QueueId(1));
    s.mem.reset_counters();
    for i in 0..32 {
        let out = s.nic.on_wire_packet(
            Time::from_us(i * 2),
            MacAddr::local_admin(7),
            flow,
            1448,
            i,
            &mut s.fab,
            &mut s.mem,
        );
        assert!(matches!(out, RxOutcome::Delivered { pf, .. } if pf == s.pfs[1]));
    }
    let c = s.mem.counters();
    // Payloads and CQEs go through DDIO; the only DRAM traffic allowed is
    // the cold descriptor fetches (the driver never wrote these slots in
    // this raw-stack test, so they miss).
    assert_eq!(
        c.dram_writes.iter().sum::<u64>(),
        0,
        "no DRAM writes under DDIO"
    );
    assert!(
        c.dram_reads.iter().sum::<u64>() <= 32 * 128,
        "only cold descriptor fetches may read DRAM"
    );
    assert_eq!(c.interconnect_bytes, 0, "and nothing crosses QPI");
}

#[test]
fn mac_steered_rx_to_wrong_socket_pays_both_dram_and_qpi() {
    let mut s = stack(SteeringMode::MacBased);
    let flow = FlowTuple::tcp(1, 1, 2, 2);
    // Packets for PF0's MAC, but the consuming queue lives on node 1?
    // No — the classic remote case: buffers on node 1, device PF0 on node 0.
    // Queue 1 belongs to PF1; use PF0's queue with... simplest: steer the
    // flow at PF0 to queue 1 (node-1 buffers, node-0 PF is impossible under
    // MAC steering since queue 1 rides PF1). Exercise instead the raw
    // memsys contract: a remote DMA write from PF0 into node-1 memory.
    let buf = s.mem.alloc(NodeId(1), 4096);
    s.mem.reset_counters();
    s.fab.dma_write(Time::ZERO, s.pfs[0], &mut s.mem, buf, 1448);
    let c = s.mem.counters();
    assert!(c.dram_write_bytes(NodeId(1)) >= 1448);
    assert!(c.interconnect_bytes >= 1448);
    let _ = flow;
}

#[test]
fn rx_after_cpu_consumption_stays_ddio_hot() {
    // The steady-state recycling pattern: DMA write -> CPU read -> DMA
    // write again must keep hitting the DDIO partition, never DRAM.
    let mut s = stack(SteeringMode::FlowBased);
    let buf = s.mem.alloc(NodeId(0), 4096);
    for round in 0..16 {
        s.mem.reset_counters();
        s.mem.dma_write(Time::from_us(round), NodeId(0), buf, 1448);
        s.mem.cpu_read(
            Time::from_us(round),
            NodeId(0),
            buf,
            1448,
            AccessKind::Stream,
        );
        let c = s.mem.counters();
        assert_eq!(c.total_dram_bytes(), 0, "round {round} stayed in LLC");
    }
}

#[test]
fn prop_flow_steering_is_total() {
    // Every flow steers to SOME valid PF/queue; no packet is unroutable.
    let mut r = SimRng::seed(0x57ee);
    for _ in 0..16 {
        let n = 1 + r.below(19) as usize;
        let mut s = stack(SteeringMode::FlowBased);
        for i in 0..n {
            let p = 1 + r.below(59_999) as u16;
            let flow = FlowTuple::tcp(10, p, 20, 80);
            let out = s.nic.on_wire_packet(
                Time::from_us(i as u64),
                MacAddr::local_admin(7),
                flow,
                512,
                0,
                &mut s.fab,
                &mut s.mem,
            );
            let ok = matches!(out, RxOutcome::Delivered { .. });
            assert!(ok);
        }
    }
}

#[test]
fn prop_dma_write_traffic_is_line_rounded() {
    let mut r = SimRng::seed(0x57ef);
    for _ in 0..16 {
        let len = 1 + r.below(8191);
        let mut m = MemSystem::new(MemConfig::dual_socket_broadwell());
        let buf = m.alloc(NodeId(0), 16384);
        m.reset_counters();
        m.dma_write(Time::ZERO, NodeId(1), buf, len);
        let written = m.counters().dram_write_bytes(NodeId(0));
        assert_eq!(written % 64, 0, "line granular");
        assert!(written >= len);
        assert!(written < len + 128);
    }
}
