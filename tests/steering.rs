//! Integration tests of the steering machinery across kernel + nic:
//! IOctoRFS flow movement, ordering guarantees, ARFS rule lifecycle.

use ioctopus::experiments::migration;

#[test]
fn octonic_migration_is_lossless_and_ordered() {
    let r = migration::run(true);
    assert_eq!(r.ooo_packets, 0, "no out-of-order packets (paper §5.3)");
    assert_eq!(r.dropped, 0, "no lost packets (paper §5.3)");
    // The flow really moved: PF1 carries the traffic at the end.
    let (pf0_after, pf1_after) = migration::mean_rates(&r, 8.0, 9.5);
    assert!(
        pf1_after > pf0_after * 5.0,
        "PF1 {pf1_after:.1} vs PF0 {pf0_after:.1}"
    );
}

#[test]
fn standard_firmware_cannot_move_the_flow() {
    let r = migration::run(false);
    let (_, pf1_after) = migration::mean_rates(&r, 8.0, 9.5);
    assert!(
        pf1_after < 0.5,
        "MAC-based steering keeps the flow on PF0 (got PF1={pf1_after:.2} Gb/s)"
    );
}

#[test]
fn migration_throughput_transition_is_the_papers_shape() {
    // octoNIC: level before ≈ level after (both "local").
    let octo = migration::run(true);
    let (b, _) = migration::mean_rates(&octo, 1.0, 4.0);
    let (_, a) = migration::mean_rates(&octo, 6.0, 9.5);
    assert!(
        (a / b) > 0.85 && (a / b) < 1.15,
        "octo level: {b:.1} -> {a:.1}"
    );
    // ethNIC: clear drop to remote level after migration.
    let eth = migration::run(false);
    let (eb, _) = migration::mean_rates(&eth, 1.0, 4.0);
    let (ea, _) = migration::mean_rates(&eth, 6.0, 9.5);
    assert!(ea < eb * 0.95, "eth level must drop: {eb:.1} -> {ea:.1}");
    assert!(ea > eb * 0.4, "but still flow (remote level): {ea:.1}");
}
