//! Differential test: NAPI-style batched dispatch (`NetLoop::run`) must be
//! bit-for-bit identical to the one-event-at-a-time oracle
//! (`NetLoop::run_unbatched`). Draining a same-timestamp batch up front and
//! grouping consecutive same-destination wire arrivals under one host
//! borrow amortizes queue settles and router lookups — but it must never
//! reorder dispatch, because per-flow wire sequence numbers are assigned in
//! dispatch order. Any divergence here is a correctness bug, not noise.

use ioctopus::config::{BuildOpts, Placement};
use ioctopus::netloop::{make_rr, make_rx_stream, App, NetLoop};
use ioctopus::system::build_duplex;
use simcore::campaign::{plan_for, CampaignConfig};
use simcore::{Dur, Time};

/// Everything observable about a finished run, compared exactly.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    events: u64,
    now: Time,
    samples: Vec<(Time, Vec<(u64, u64)>)>,
    pf_bytes: Vec<(u64, u64)>,
    apps: Vec<AppState>,
}

#[derive(Debug, PartialEq)]
enum AppState {
    Rx {
        consumed: u64,
    },
    Rr {
        done: usize,
        rtt_mean: Option<Dur>,
        rtt_min: Option<Dur>,
        rtt_max: Option<Dur>,
    },
}

fn fingerprint(nl: &NetLoop, apps: &[usize]) -> Fingerprint {
    Fingerprint {
        events: nl.events_processed(),
        now: nl.now(),
        samples: nl.samples.clone(),
        pf_bytes: nl
            .duplex
            .server_pfs
            .iter()
            .map(|&pf| {
                (
                    nl.duplex.server.nic.rx_bytes(pf),
                    nl.duplex.server.nic.tx_bytes(pf),
                )
            })
            .collect(),
        apps: apps
            .iter()
            .map(|&i| match nl.app(i) {
                App::Rx(a) => AppState::Rx {
                    consumed: a.consumed,
                },
                App::Rr(a) => AppState::Rr {
                    done: a.done,
                    rtt_mean: a.rtt.mean(),
                    rtt_min: a.rtt.min(),
                    rtt_max: a.rtt.max(),
                },
                other => panic!("unexpected app variant {other:?}"),
            })
            .collect(),
    }
}

/// Runs the same scenario twice — batched and unbatched — and returns both
/// fingerprints. `build` must be deterministic (it is called twice).
fn differential(
    build: impl Fn() -> (NetLoop, Vec<usize>),
    until: Time,
) -> (Fingerprint, Fingerprint) {
    let (mut batched, apps_b) = build();
    batched.start_apps(Time::ZERO);
    batched.run(until);
    let (mut oracle, apps_o) = build();
    oracle.start_apps(Time::ZERO);
    oracle.run_unbatched(until);
    (
        fingerprint(&batched, &apps_b),
        fingerprint(&oracle, &apps_o),
    )
}

#[test]
fn rx_stream_batched_matches_unbatched() {
    // Figure 6-shaped runs: bulk receive is where same-timestamp wire
    // arrival bursts (TSO segment trains) actually batch.
    for placement in [Placement::Octopus, Placement::Remote] {
        for msg in [1448u64, 65536] {
            let build = || {
                let mut duplex = build_duplex(placement, BuildOpts::default());
                let app = make_rx_stream(
                    &mut duplex,
                    0,
                    0,
                    kernel::NetdevId(0),
                    msg,
                    512 * 1024,
                    4242,
                );
                let mut nl = NetLoop::new(duplex);
                nl.enable_sampling(Dur::from_us(500));
                let i = nl.add_app(App::Rx(app));
                (nl, vec![i])
            };
            let (batched, oracle) = differential(build, Time::from_ms(3));
            assert_eq!(batched, oracle, "rx {placement:?} msg={msg} diverged");
        }
    }
}

#[test]
fn rr_batched_matches_unbatched() {
    // Figure 9-shaped runs: ping-pong latency, where each transaction's RTT
    // would expose any event reordering directly in the histogram.
    for msg in [64u64, 4096] {
        let build = || {
            let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
            let app = make_rr(&mut duplex, 0, 0, kernel::NetdevId(0), msg, 50, 4242, false);
            let mut nl = NetLoop::new(duplex);
            let i = nl.add_app(App::Rr(app));
            (nl, vec![i])
        };
        let (batched, oracle) = differential(build, Time::from_ms(20));
        assert_eq!(batched, oracle, "rr msg={msg} diverged");
    }
}

#[test]
fn chaos_schedule_batched_matches_unbatched() {
    // Fault-heavy runs: generated fault schedules inject link flaps and
    // recovery timers — retries landing at or nanoseconds after `now`, the
    // worst case for any batching that peeks at the head timestamp.
    for case in 0..3u64 {
        let build = || {
            let mut cfg = CampaignConfig::new(0xC0FFEE ^ case, 3);
            cfg.media_faults = true;
            let plan = plan_for(&cfg, case);
            let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
            let app = make_rx_stream(
                &mut duplex,
                0,
                0,
                kernel::NetdevId(0),
                4096,
                512 * 1024,
                4242,
            );
            let mut nl = NetLoop::new(duplex);
            nl.install_fault_plan(&plan, Dur::from_us(100));
            let i = nl.add_app(App::Rx(app));
            (nl, vec![i])
        };
        let (batched, oracle) = differential(build, Time::from_ms(3));
        assert_eq!(batched, oracle, "chaos case={case} diverged");
    }
}

#[test]
fn periodic_audit_runs_clean_under_batching() {
    // The interval audit flows through the batch path as an ordinary event;
    // it must still observe a consistent system.
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    let app = make_rx_stream(
        &mut duplex,
        0,
        0,
        kernel::NetdevId(0),
        16384,
        512 * 1024,
        4242,
    );
    let mut nl = NetLoop::new(duplex);
    nl.enable_audit(Dur::from_us(250));
    let i = nl.add_app(App::Rx(app));
    nl.start_apps(Time::ZERO);
    nl.run(Time::from_ms(2));
    nl.run_audit();
    assert!(
        nl.audit.violations().is_empty(),
        "batched dispatch broke an invariant: {:?}",
        nl.audit.violations()
    );
    match nl.app(i) {
        App::Rx(a) => assert!(a.consumed > 0, "run must make progress"),
        _ => unreachable!(),
    }
}
