//! NUMA-locality assertions over the flight recorder — the paper's core
//! claim, measured instead of implied:
//!
//! * uniform IOctopus mode steers every flow through the PF on the data's
//!   socket, so the ledger must show **zero** remote-DMA bytes;
//! * the legacy single-NIC placement (the NUDMA baseline) pins the device
//!   on the far socket, so essentially **every** DMA byte crosses the
//!   interconnect — a nonzero, deterministic share;
//! * the hotplug experiment's windowed ledger (asserted next to the
//!   experiment in `ioctopus::experiments::reconfig`) shows the stream
//!   living on the survivor PF only during the outage window.

use ioctopus::config::Placement;
use ioctopus::experiments::tcp_stream;

#[test]
fn uniform_mode_has_zero_remote_dma_bytes_on_fig7_stream() {
    let (r, telem) = tcp_stream::run_tx_traced(Placement::Octopus, 65536, 3, 1 << 10);
    assert!(r.throughput_gbps > 0.0);
    let t = &telem.locality;
    assert!(t.local_bytes() > 1 << 20, "stream must move real data");
    assert_eq!(
        t.remote_bytes(),
        0,
        "IOctopus: no DMA crosses QPI\n{}",
        t.render()
    );
    assert_eq!(t.totals.qpi_crossings, 0);
    assert_eq!(telem.metrics.get("nic.dma.remote_bytes"), Some(0));
}

#[test]
fn uniform_mode_rx_ddio_absorbs_every_payload_write() {
    let (_, telem) = tcp_stream::run_rx_traced(Placement::Octopus, 65536, 3, 1 << 10);
    let t = &telem.locality;
    assert_eq!(t.remote_bytes(), 0);
    assert!(t.totals.ddio_hits > 0, "payload writes are DDIO-eligible");
    assert_eq!(
        t.totals.ddio_misses, 0,
        "local writes allocate into the LLC"
    );
}

#[test]
fn legacy_nudma_placement_has_a_nonzero_stable_remote_share() {
    let (r, a) = tcp_stream::run_rx_traced(Placement::Remote, 65536, 3, 1 << 10);
    assert!(r.throughput_gbps > 0.0);
    let t = &a.locality;
    // The remote NIC reaches node-0 rings and buffers across QPI for
    // descriptors, payloads, and CQEs alike: the share is not just
    // nonzero, it is essentially total.
    assert!(
        t.totals.remote_share() > 0.9,
        "NUDMA: remote share {:.4}\n{}",
        t.totals.remote_share(),
        t.render()
    );
    assert!(t.remote_bytes() > 1 << 20);
    assert!(t.totals.qpi_crossings > 0);
    assert_eq!(t.totals.ddio_hits, 0, "remote writes cannot hit local DDIO");
    // Stable: the share is a deterministic artifact, not a race sample.
    let (_, b) = tcp_stream::run_rx_traced(Placement::Remote, 65536, 3, 1 << 10);
    assert_eq!(a.locality, b.locality);
}
