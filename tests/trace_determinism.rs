//! Determinism gate for the telemetry subsystem (DESIGN.md §11).
//!
//! Trace artifacts are part of the experiment output, so they obey the
//! same contract as every number the simulator produces: identical
//! configuration ⇒ byte-identical bytes, whether the sweep ran serially
//! or on the worker pool. Exporters format integers only (timestamps are
//! fixed-point microseconds computed in integer arithmetic), so there is
//! no platform float-formatting to leak through.

use ioctopus::config::Placement;
use ioctopus::experiments::tcp_stream;
use ioctopus::sweep;
use telemetry::export;

/// One traced Figure 7 point, exported every way we know how.
fn traced_exports(msg: u64) -> (String, String, String) {
    let (_, telem) = tcp_stream::run_tx_traced(Placement::Octopus, msg, 2, 1 << 12);
    (
        export::to_native(&telem.trace),
        export::to_chrome_json(&telem.trace),
        export::to_folded(&telem.trace),
    )
}

#[test]
fn identical_runs_produce_byte_identical_trace_exports() {
    let (n1, c1, f1) = traced_exports(16384);
    let (n2, c2, f2) = traced_exports(16384);
    assert!(n1.lines().count() > 10, "trace must have content");
    assert_eq!(n1, n2, "native export must be byte-identical across runs");
    assert_eq!(c1, c2, "chrome export must be byte-identical across runs");
    assert_eq!(f1, f2, "folded export must be byte-identical across runs");
}

#[test]
fn traced_sweep_parallel_is_byte_identical_to_serial() {
    let sizes: Vec<u64> = vec![4096, 65536];
    let serial = sweep::sweep_serial(sizes.clone(), traced_exports);
    let parallel = sweep::sweep(sizes, traced_exports);
    assert_eq!(
        serial, parallel,
        "trace artifacts must not depend on sweep scheduling"
    );
}

#[test]
fn exports_roundtrip_and_validate() {
    let (native, chrome, folded) = traced_exports(16384);
    let parsed = export::parse_native(&native).expect("native export parses back");
    assert!(!parsed.is_empty());
    let events = export::json::validate_chrome(&chrome).expect("chrome schema");
    assert!(events > parsed.len(), "metadata events + records");
    assert!(folded.lines().all(|l| l.rsplit_once(' ').is_some()));
}

#[test]
fn flight_ledger_is_deterministic() {
    let (_, a) = tcp_stream::run_rx_traced(Placement::Remote, 16384, 2, 64);
    let (_, b) = tcp_stream::run_rx_traced(Placement::Remote, 16384, 2, 64);
    assert_eq!(a.locality, b.locality, "ledger must be run-stable");
    assert_eq!(
        a.metrics.rows(),
        b.metrics.rows(),
        "snapshot must be run-stable"
    );
}
