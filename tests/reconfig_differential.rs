//! Differential proof of clean reconfiguration: a degrade→restore hotplug
//! cycle that quiesces before restoring must leave the system in a state
//! *bit-identical* to one that never faulted.
//!
//! Two loops run the same finite ping-pong workload, which completes and
//! quiesces well before the fault window. Loop B then loses PF0 to a
//! surprise removal (dropping it to legacy NUDMA mode) and gets it back via
//! re-enumeration; loop A idles through the same window under the same
//! watchdog and audit ticks. Both streams are checksummed (see
//! `NetLoop::checksum`); the prefix windows differ — B's contains the fault
//! events and the reconfiguration — but after resuming an identical second
//! workload from the same quiesce point, the post-restore windows must
//! produce the same rolling checksum, the same round-trip counts, and clean
//! audits. Device epochs differ across the two loops by construction
//! (B re-added PF0 at epoch 2), which is exactly why the checksum excludes
//! the interrupt epoch stamp: a fenced-and-restored machine is
//! *observationally* identical, not epoch-identical.

use ioctopus::config::{BuildOpts, Placement};
use ioctopus::netloop::{make_rr, App, NetLoop};
use ioctopus::system::build_duplex;
use simcore::{Dur, FaultKind, FaultPlan, Time};

const WATCHDOG_EVERY: Dur = Dur::from_us(50);
const AUDIT_EVERY: Dur = Dur::from_us(100);
/// The finite workload finishes within ~1 ms; the fault window opens at
/// 3 ms, so the remove/re-add cycle runs against a quiesced machine.
const REMOVE_AT: Time = Time::from_ms(3);
const READD_AT: Time = Time::from_ms(4);
/// Quiesce point the second workload resumes from (past the re-add and its
/// 20 µs retrain window).
const RESUME_AT: Time = Time::from_ms(5);
const END_AT: Time = Time::from_ms(9);

/// Builds one loop with the finite phase-1 workload and the given fault
/// plan (possibly empty — the empty plan still arms the watchdog so both
/// loops tick identically).
fn build_loop(plan: &FaultPlan) -> NetLoop {
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    let app = App::Rr(make_rr(
        &mut duplex,
        0,
        0,
        kernel::NetdevId(0),
        1024,
        64,
        7001,
        false,
    ));
    let mut nl = NetLoop::new(duplex);
    nl.add_app(app);
    nl.enable_audit(AUDIT_EVERY);
    nl.install_fault_plan(plan, WATCHDOG_EVERY);
    nl.start_apps(Time::ZERO);
    nl
}

/// Runs the loop to the quiesce point, discards the (possibly divergent)
/// prefix checksum, resumes an identical second workload, and returns the
/// post-restore window checksum plus its round-trip count.
fn resume_and_finish(nl: &mut NetLoop) -> (u64, u64, usize) {
    nl.run(RESUME_AT);
    let prefix = nl.take_checksum();
    let app = App::Rr(make_rr(
        &mut nl.duplex,
        0,
        0,
        kernel::NetdevId(0),
        1024,
        64,
        7003,
        false,
    ));
    let idx = nl.add_app(app);
    nl.start_apps(RESUME_AT);
    nl.run(END_AT);
    nl.run_audit();
    let done = match nl.app(idx) {
        App::Rr(a) => a.done,
        _ => unreachable!(),
    };
    (prefix, nl.take_checksum(), done)
}

#[test]
fn quiesced_degrade_restore_cycle_is_invisible_downstream() {
    let mut clean = build_loop(&FaultPlan::new());

    let mut plan = FaultPlan::new();
    plan.push(REMOVE_AT, 0, FaultKind::SurpriseRemove);
    plan.push(READD_AT, 0, FaultKind::Reenumerate);
    let mut churned = build_loop(&plan);

    let (clean_prefix, clean_tail, clean_done) = resume_and_finish(&mut clean);
    let (churn_prefix, churn_tail, churn_done) = resume_and_finish(&mut churned);

    // The cycle really happened: epoch 2, one NUDMA round trip, and the
    // prefix windows are observably different streams.
    let pf0 = churned.duplex.server_pfs[0];
    assert_eq!(churned.duplex.server.nic.pf_epoch(pf0), 2);
    let rb = churned.duplex.server.robustness();
    assert_eq!(rb.reconfigs, 2, "remove and re-add each completed a fence");
    assert_eq!(rb.nudma_entries, 1, "single-PF loss degraded to NUDMA");
    assert_eq!(rb.nudma_exits, 1, "re-add restored uniform IOctopus mode");
    assert_ne!(clean_prefix, churn_prefix, "prefixes contain the faults");

    // Quiesced before the remove, so the fence had nothing to discard...
    assert_eq!(rb.fenced_completions, 0, "no in-flight work to fence");
    assert_eq!(rb.fenced_irqs, 0);

    // ...and downstream of the restore the machine is bit-identical to one
    // that never faulted: same event stream, same work completed.
    assert_eq!(clean_done, 64, "second workload ran to completion");
    assert_eq!(churn_done, 64);
    assert_eq!(
        clean_tail, churn_tail,
        "post-restore event streams must be bit-identical"
    );
    assert!(clean.audit.ok(), "{:?}", clean.audit.violations());
    assert!(churned.audit.ok(), "{:?}", churned.audit.violations());
}

#[test]
fn unquiesced_cycle_is_visibly_different() {
    // Sensitivity control: the checksum must actually distinguish streams
    // that differ. A removal landing mid-workload (20 µs in, ping-pong
    // still in flight) produces a window whose events — the faults, the
    // failover path, any fenced work — diverge from the clean run's, and
    // the sums must diverge with them. Without this, the tail equality
    // above could be an artifact of a blind hash.
    let mut plan = FaultPlan::new();
    plan.push(Time::from_us(20), 0, FaultKind::SurpriseRemove);
    plan.push(READD_AT, 0, FaultKind::Reenumerate);
    let mut churned = build_loop(&plan);
    let mut clean = build_loop(&FaultPlan::new());
    clean.run(RESUME_AT);
    churned.run(RESUME_AT);
    assert_ne!(
        clean.checksum(),
        churned.checksum(),
        "an unquiesced cycle perturbs the stream"
    );
    // Even torn mid-flight, the invariants hold at the quiesce point.
    churned.run_audit();
    assert!(churned.audit.ok(), "{:?}", churned.audit.violations());
}
