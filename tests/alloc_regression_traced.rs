//! Allocation-regression gate for the event hot path **with telemetry
//! enabled**.
//!
//! The tracer rings are pre-sized at enable time and overwrite in place
//! once full; the flight recorder reserves its row table up front and
//! aggregates overflow into a fixed bucket; the registry cells are
//! leaked statics. So steady-state dispatch must stay at **zero** heap
//! allocations even while every record path is live — this is the
//! property that keeps tracing safe to turn on against perf runs.
//!
//! Single test in this binary on purpose: the allocator counter is
//! process-wide, and a lone test keeps the measurement window quiet.

use ioctopus::config::{BuildOpts, Placement};
use ioctopus::netloop::{make_rx_stream, App, NetLoop};
use ioctopus::system::build_duplex;
use simcore::alloc_count::{allocation_count, CountingAlloc};
use simcore::Time;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn traced_steady_state_rx_stream_allocates_nothing() {
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    let app = make_rx_stream(
        &mut duplex,
        0,
        0,
        kernel::NetdevId(0),
        16384,
        512 * 1024,
        4242,
    );
    let mut nl = NetLoop::new(duplex);
    // Telemetry fully on: small rings so the overwrite path (the one that
    // runs in any long trace) is what gets measured, plus the ledger.
    nl.enable_tracing(1 << 12);
    nl.enable_flight_recorder(32);
    let i = nl.add_app(App::Rx(app));
    nl.start_apps(Time::ZERO);

    // Warm every recycled capacity and fill the rings past wraparound.
    nl.run(Time::from_ms(8));
    let warm_events = nl.events_processed();
    assert!(warm_events > 1000, "warmup must exercise the hot path");

    let before = allocation_count();
    nl.run(Time::from_ms(14));
    let allocs = allocation_count() - before;

    let events = nl.events_processed() - warm_events;
    let consumed = match nl.app(i) {
        App::Rx(a) => a.consumed,
        _ => unreachable!(),
    };
    assert!(consumed > 0, "measurement window must stream data");
    assert!(events > 5_000, "measurement window too small: {events}");
    assert_eq!(
        allocs,
        0,
        "traced steady-state dispatch must not allocate: {allocs} allocations over \
         {events} events ({:.4} allocs/event)",
        allocs as f64 / events as f64
    );

    // The run actually recorded: rings wrapped and the ledger filled
    // (otherwise this binary measures nothing).
    let table = nl.flight_table().expect("flight recorder enabled");
    assert!(table.local_bytes() > 0);
    let set = nl.take_trace();
    assert!(set.retained() > 0);
    assert!(set.overwritten() > 0, "rings sized to wrap during the run");
}
