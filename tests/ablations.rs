//! Integration tests for the design-choice ablations DESIGN.md calls out:
//! the §2.4 remote-completion-ring experiment, DDIO on/off, the IOctoSG
//! extension, and the programmable-PCIe-switch latency knob.

use ioctopus::config::{BuildOpts, DdioMode, Placement};
use ioctopus::experiments::{pktgen, tcp_stream};
use memsys::{MemConfig, MemSystem, NodeId};
use nic::desc::TxFragment;
use nic::{FlowTuple, Nic, NicConfig, QueueConfig, TxDesc};
use pcie::{Bifurcation, FabricConfig, PcieFabric, PcieGen};
use simcore::{Dur, Time};

#[test]
fn sec24_device_local_completion_ring_is_marginal() {
    // "allocating R remotely to pktgen and locally to the NIC yields only a
    // marginal performance improvement of up to 2%" — the paper's evidence
    // that remote DDIO would not solve NUDMA.
    let normal = pktgen::run(Placement::Remote, 64, 6, false);
    let devring = pktgen::run(Placement::Remote, 64, 6, true);
    let improvement = devring.rate_per_sec / normal.rate_per_sec;
    assert!(
        (0.93..1.08).contains(&improvement),
        "device-local CQ changed pktgen by {:.1}% (paper: <= 2%)",
        (improvement - 1.0) * 100.0
    );
}

#[test]
fn ddio_off_hurts_even_the_local_configuration() {
    // Figure 9's llnd insight generalizes: without DDIO the local
    // configuration pays DRAM for every packet.
    let on = tcp_stream::run_rx(Placement::Local, 65536, 6);
    let off = {
        let opts = BuildOpts {
            ddio: DdioMode::Off,
            ..BuildOpts::default()
        };
        // run_rx builds its own duplex, so replicate it via a custom run.
        ddio_off_rx(opts)
    };
    assert!(
        off < on.throughput_gbps,
        "DDIO off must cost throughput: {off:.2} vs {:.2}",
        on.throughput_gbps
    );
}

fn ddio_off_rx(opts: BuildOpts) -> f64 {
    use ioctopus::netloop::{make_rx_stream, App, NetLoop};
    use ioctopus::system::build_duplex;
    let mut duplex = build_duplex(Placement::Local, opts);
    let app = make_rx_stream(
        &mut duplex,
        0,
        0,
        kernel::NetdevId(0),
        65536,
        512 * 1024,
        4242,
    );
    let mut nl = NetLoop::new(duplex);
    let i = nl.add_app(App::Rx(app));
    nl.start_apps(Time::ZERO);
    nl.run(Time::from_ms(6));
    match nl.app(i) {
        App::Rx(a) => a.consumed as f64 * 8.0 / 1e9 / 0.006,
        _ => unreachable!(),
    }
}

#[test]
fn ioctosg_keeps_cross_node_fragments_off_the_interconnect() {
    // §3.3: "IOctoSG (scatter-gather) ... allows the driver to provide a
    // hint in ring descriptors specifying which PF to use when accessing
    // each fragment." The paper proposes it; we implement it.
    let run = |hinted: bool| -> u64 {
        let mut mem = MemSystem::new(MemConfig::dual_socket_broadwell());
        let mut fab = PcieFabric::new(FabricConfig::default());
        let pfs = fab.add_bifurcated(&Bifurcation::x8x8_dual_socket(PcieGen::Gen3));
        let mut nic = Nic::new(NicConfig::octonic_100g(), 2, pfs[0]);
        let node = NodeId(0);
        let mk = |mem: &mut MemSystem| mem.alloc(node, 64 * 1024);
        let (tx, txc, rx, rxc) = (mk(&mut mem), mk(&mut mem), mk(&mut mem), mk(&mut mem));
        let q = nic.attach_queue(
            QueueConfig {
                pf: pfs[0],
                irq_core: 0,
                node,
            },
            tx,
            txc,
            rx,
            rxc,
        );
        let flow = FlowTuple::tcp(1, 1, 2, 2);
        let frag0 = mem.alloc(NodeId(0), 1 << 20);
        let frag1 = mem.alloc(NodeId(1), 1 << 20);
        mem.reset_counters();
        let mut t = Time::ZERO;
        let mut out = nic::TxOutcome::default();
        for i in 0..128u64 {
            let desc = TxDesc {
                fragments: vec![
                    TxFragment {
                        addr: frag0.offset((i % 128) * 4096),
                        len: 724,
                        pf_hint: hinted.then_some(pfs[0]),
                    },
                    TxFragment {
                        addr: frag1.offset((i % 128) * 4096),
                        len: 724,
                        pf_hint: hinted.then_some(pfs[1]),
                    },
                ]
                .into(),
                flow,
                len: 1448,
                tso: false,
            };
            nic.post_tx(q, desc);
            nic.tx_doorbell(t, t, q, &mut fab, &mut mem, &mut out);
            t = out.packets.last().map(|p| p.0).unwrap_or(t) + Dur::from_us(1);
        }
        mem.counters().interconnect_bytes
    };
    let without = run(false);
    let with = run(true);
    assert!(
        with < without / 5,
        "IOctoSG must keep fragment DMA local: {with} vs {without} bytes"
    );
}

#[test]
fn pcie_switch_adds_latency_but_not_bandwidth_cost() {
    // §3.2: a programmable switch "adds latency to individual operations".
    let mut mem = MemSystem::new(MemConfig::dual_socket_broadwell());
    let mut direct = PcieFabric::new(FabricConfig::default());
    let mut switched = PcieFabric::new(FabricConfig {
        switch_latency: Dur::from_ns(150),
        ..FabricConfig::default()
    });
    let d = direct.add_endpoint(NodeId(0), PcieGen::Gen3, 8);
    let s = switched.add_endpoint(NodeId(0), PcieGen::Gen3, 8);
    let buf = mem.alloc(NodeId(0), 1 << 20);
    let wd = direct
        .dma_write(Time::ZERO, d, &mut mem, buf, 1448)
        .expect("healthy link");
    let ws = switched
        .dma_write(Time::ZERO, s, &mut mem, buf.offset(4096), 1448)
        .expect("healthy link");
    assert_eq!(ws - wd, Dur::from_ns(150), "one switch hop per write");
    // Reads pay the hop per traversal leg (request + completion); the two
    // fabrics share one memory system, so allow the second read's small
    // DRAM-queueing residue.
    let rd = direct
        .dma_read(Time::from_us(5), d, &mut mem, buf.offset(8192), 1448)
        .expect("healthy link");
    let rs = switched
        .dma_read(Time::from_us(5), s, &mut mem, buf.offset(12288), 1448)
        .expect("healthy link");
    let delta = rs - rd;
    assert!(
        delta >= Dur::from_ns(295) && delta <= Dur::from_ns(330),
        "two switch hops per read, got {delta}"
    );
}
