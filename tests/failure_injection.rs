//! Failure injection: the system's behaviour at resource exhaustion and
//! adversarial conditions — drops are counted, backpressure engages, and
//! nothing panics or wedges.

use ioctopus::config::{BuildOpts, Placement};
use ioctopus::system::build_duplex;
use kernel::{HostOut, NetdevId, RecvOutcome, SendOutcome};
use nic::FlowTuple;
use simcore::{Dur, Time};

#[test]
fn rx_ring_exhaustion_drops_and_recovers() {
    // Blast packets with the consumer asleep: the ring drains, drops are
    // counted, and after the app consumes, delivery resumes.
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    let th = duplex.server.spawn_thread(14);
    let flow = FlowTuple::tcp(0x0A00_0001, 900, 0x0A00_0002, 80);
    let sock = duplex.server.open_socket(Time::ZERO, th, flow, NetdevId(0));
    // Ring = 1024 posted buffers; send 1500 packets without any NAPI runs
    // (we never dispatch the irq events).
    for seq in 0..1500u64 {
        let _ = duplex
            .server
            .wire_arrival(Time::from_us(seq), flow, 1448, seq);
    }
    let dropped = duplex.server.nic.rx_dropped();
    assert!(dropped >= 1500 - 1024, "ring exhausted: {dropped} drops");
    // Now service the queue and consume: the survivors arrive intact.
    let q = nic::QueueId(14);
    duplex.server.irq(Time::from_ms(2), q);
    match duplex.server.recv(Time::from_ms(3), sock, u64::MAX) {
        RecvOutcome::Data { bytes, .. } => assert!(bytes > 0),
        RecvOutcome::WouldBlock => panic!("survivors must be deliverable"),
    }
    // And the pipeline is healthy again: new packets are not dropped.
    let before = duplex.server.nic.rx_dropped();
    let outs = duplex
        .server
        .wire_arrival(Time::from_ms(4), flow, 1448, 9999);
    assert!(!outs.is_empty() || duplex.server.nic.rx_dropped() == before);
}

#[test]
fn tx_ring_full_blocks_instead_of_dropping() {
    let mut duplex = build_duplex(Placement::Local, BuildOpts::default());
    let th = duplex.server.spawn_thread(0);
    let flow = FlowTuple::tcp(0x0A00_0001, 901, 0x0A00_0002, 80);
    let sock = duplex.server.open_socket(Time::ZERO, th, flow, NetdevId(0));
    // Fill the sndbuf without ever reaping completions.
    let mut blocked = false;
    let mut t = Time::ZERO;
    for _ in 0..600 {
        match duplex.server.send(t, sock, 64 * 1024) {
            SendOutcome::Sent { done_at, .. } => t = done_at,
            SendOutcome::WouldBlock => {
                blocked = true;
                break;
            }
        }
    }
    assert!(blocked, "finite buffering must backpressure");
    // Nothing was silently lost: tx accounting is consistent.
    let s = duplex.server.socket(sock);
    assert_eq!(s.tx_bytes, s.tx_inflight, "all posted bytes tracked");
}

#[test]
fn unknown_flows_are_counted_not_panicked() {
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    for seq in 0..50u64 {
        let bogus = FlowTuple::udp(1, seq as u16 + 1, 2, 2);
        let outs = duplex
            .server
            .wire_arrival(Time::from_us(seq), bogus, 64, seq);
        assert!(outs.is_empty());
    }
    assert_eq!(duplex.server.rx_no_socket_drops(), 50);
}

#[test]
fn arfs_rules_expire_when_idle() {
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    let th = duplex.server.spawn_thread(14);
    let flow = FlowTuple::tcp(0x0A00_0001, 902, 0x0A00_0002, 80);
    let _sock = duplex.server.open_socket(Time::ZERO, th, flow, NetdevId(0));
    // The rule installed at open_socket expires after long idleness...
    let removed = duplex.server.nic.arfs_expire(Time::from_ms(900));
    assert!(removed >= 1, "idle rule expired");
    // ...and traffic still flows afterwards via the RSS fallback.
    let outs = duplex
        .server
        .wire_arrival(Time::from_ms(901), flow, 1448, 0);
    assert!(!outs.is_empty(), "RSS fallback still delivers");
}

#[test]
fn sendfile_zero_copy_accounting_and_backpressure() {
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    let th = duplex.server.spawn_thread(14);
    let flow = FlowTuple::tcp(0x0A00_0001, 903, 0x0A00_0002, 80);
    let sock = duplex.server.open_socket(Time::ZERO, th, flow, NetdevId(0));
    let pages: Vec<(memsys::PhysAddr, u64)> = (0..32)
        .map(|i| {
            let node = memsys::NodeId(i % 2);
            (duplex.server.mem.alloc(node, 4096), 4096u64)
        })
        .collect();
    let total: u64 = pages.iter().map(|(_, l)| l).sum();
    let outs = match duplex.server.sendfile(Time::ZERO, sock, &pages) {
        SendOutcome::Sent { outs, .. } => outs,
        SendOutcome::WouldBlock => panic!("first sendfile fits"),
    };
    assert_eq!(duplex.server.socket(sock).tx_bytes, total);
    // The wire packets cover the full file.
    let wire_bytes: u64 = outs
        .iter()
        .filter_map(|o| match o {
            HostOut::PacketToPeer { bytes, .. } => Some(*bytes),
            _ => None,
        })
        .sum();
    assert_eq!(wire_bytes, total);
    // Completions release the inflight accounting.
    for o in &outs {
        if let HostOut::Irq { at, queue } = o {
            duplex.server.irq(*at + Dur::from_ms(1), *queue);
        }
    }
    assert_eq!(duplex.server.socket(sock).tx_inflight, 0);
    // Repeated sendfiles eventually backpressure without completions.
    let mut blocked = false;
    let mut t = Time::from_ms(2);
    for _ in 0..200 {
        match duplex.server.sendfile(t, sock, &pages) {
            SendOutcome::Sent { done_at, .. } => t = done_at,
            SendOutcome::WouldBlock => {
                blocked = true;
                break;
            }
        }
    }
    assert!(blocked, "sendfile honours the sndbuf too");
}
