//! Failure injection: the system's behaviour at resource exhaustion and
//! adversarial conditions — drops are counted, backpressure engages, and
//! nothing panics or wedges.

use ioctopus::config::{BuildOpts, Placement};
use ioctopus::system::build_duplex;
use kernel::{Host, HostOut, NetdevId, RecvOutcome, SendOutcome};
use nic::FlowTuple;
use simcore::{Dur, FaultKind, OutBuf, Time};

/// Collects one `wire_arrival`'s follow-ups into a `Vec` (test-side
/// convenience over the out-buffer API).
fn wire(host: &mut Host, at: Time, flow: FlowTuple, bytes: u64, seq: u64) -> Vec<HostOut> {
    let mut out = OutBuf::new();
    host.wire_arrival(at, flow, bytes, seq, &mut out);
    out.drain().collect()
}

/// Services `queue`, discarding follow-ups.
fn irq(host: &mut Host, at: Time, queue: nic::QueueId) {
    let mut out = OutBuf::new();
    host.irq(at, queue, &mut out);
}

#[test]
fn rx_ring_exhaustion_drops_and_recovers() {
    // Blast packets with the consumer asleep: the ring drains, drops are
    // counted, and after the app consumes, delivery resumes.
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    let th = duplex.server.spawn_thread(14);
    let flow = FlowTuple::tcp(0x0A00_0001, 900, 0x0A00_0002, 80);
    let sock = duplex.server.open_socket(Time::ZERO, th, flow, NetdevId(0));
    // Ring = 1024 posted buffers; send 1500 packets without any NAPI runs
    // (we never dispatch the irq events).
    let mut out = OutBuf::new();
    for seq in 0..1500u64 {
        out.clear();
        duplex
            .server
            .wire_arrival(Time::from_us(seq), flow, 1448, seq, &mut out);
    }
    let dropped = duplex.server.nic.rx_dropped();
    assert!(dropped >= 1500 - 1024, "ring exhausted: {dropped} drops");
    // Now service the queue and consume: the survivors arrive intact.
    let q = nic::QueueId(14);
    irq(&mut duplex.server, Time::from_ms(2), q);
    match duplex.server.recv(Time::from_ms(3), sock, u64::MAX) {
        RecvOutcome::Data { bytes, .. } => assert!(bytes > 0),
        RecvOutcome::WouldBlock => panic!("survivors must be deliverable"),
    }
    // And the pipeline is healthy again: new packets are not dropped.
    let before = duplex.server.nic.rx_dropped();
    let outs = wire(&mut duplex.server, Time::from_ms(4), flow, 1448, 9999);
    assert!(!outs.is_empty() || duplex.server.nic.rx_dropped() == before);
}

#[test]
fn tx_ring_full_blocks_instead_of_dropping() {
    let mut duplex = build_duplex(Placement::Local, BuildOpts::default());
    let th = duplex.server.spawn_thread(0);
    let flow = FlowTuple::tcp(0x0A00_0001, 901, 0x0A00_0002, 80);
    let sock = duplex.server.open_socket(Time::ZERO, th, flow, NetdevId(0));
    // Fill the sndbuf without ever reaping completions.
    let mut blocked = false;
    let mut t = Time::ZERO;
    let mut out = OutBuf::new();
    for _ in 0..600 {
        out.clear();
        match duplex.server.send(t, sock, 64 * 1024, &mut out) {
            SendOutcome::Sent { done_at } => t = done_at,
            SendOutcome::WouldBlock => {
                blocked = true;
                break;
            }
        }
    }
    assert!(blocked, "finite buffering must backpressure");
    // Nothing was silently lost: tx accounting is consistent.
    let s = duplex.server.socket(sock);
    assert_eq!(s.tx_bytes, s.tx_inflight, "all posted bytes tracked");
}

#[test]
fn unknown_flows_are_counted_not_panicked() {
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    for seq in 0..50u64 {
        let bogus = FlowTuple::udp(1, seq as u16 + 1, 2, 2);
        let outs = wire(&mut duplex.server, Time::from_us(seq), bogus, 64, seq);
        assert!(outs.is_empty());
    }
    assert_eq!(duplex.server.rx_no_socket_drops(), 50);
}

#[test]
fn arfs_rules_expire_when_idle() {
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    let th = duplex.server.spawn_thread(14);
    let flow = FlowTuple::tcp(0x0A00_0001, 902, 0x0A00_0002, 80);
    let _sock = duplex.server.open_socket(Time::ZERO, th, flow, NetdevId(0));
    // The rule installed at open_socket expires after long idleness...
    let removed = duplex.server.nic.arfs_expire(Time::from_ms(900));
    assert!(removed >= 1, "idle rule expired");
    // ...and traffic still flows afterwards via the RSS fallback.
    let outs = wire(&mut duplex.server, Time::from_ms(901), flow, 1448, 0);
    assert!(!outs.is_empty(), "RSS fallback still delivers");
}

#[test]
fn sendfile_zero_copy_accounting_and_backpressure() {
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    let th = duplex.server.spawn_thread(14);
    let flow = FlowTuple::tcp(0x0A00_0001, 903, 0x0A00_0002, 80);
    let sock = duplex.server.open_socket(Time::ZERO, th, flow, NetdevId(0));
    let pages: Vec<(memsys::PhysAddr, u64)> = (0..32)
        .map(|i| {
            let node = memsys::NodeId(i % 2);
            (duplex.server.mem.alloc(node, 4096), 4096u64)
        })
        .collect();
    let total: u64 = pages.iter().map(|(_, l)| l).sum();
    let mut out = OutBuf::new();
    let outs: Vec<HostOut> = match duplex.server.sendfile(Time::ZERO, sock, &pages, &mut out) {
        SendOutcome::Sent { .. } => out.drain().collect(),
        SendOutcome::WouldBlock => panic!("first sendfile fits"),
    };
    assert_eq!(duplex.server.socket(sock).tx_bytes, total);
    // The wire packets cover the full file.
    let wire_bytes: u64 = outs
        .iter()
        .filter_map(|o| match o {
            HostOut::PacketToPeer { bytes, .. } => Some(*bytes),
            _ => None,
        })
        .sum();
    assert_eq!(wire_bytes, total);
    // Completions release the inflight accounting.
    for o in &outs {
        if let HostOut::Irq { at, queue, .. } = o {
            irq(&mut duplex.server, *at + Dur::from_ms(1), *queue);
        }
    }
    assert_eq!(duplex.server.socket(sock).tx_inflight, 0);
    // Repeated sendfiles eventually backpressure without completions.
    let mut blocked = false;
    let mut t = Time::from_ms(2);
    for _ in 0..200 {
        out.clear();
        match duplex.server.sendfile(t, sock, &pages, &mut out) {
            SendOutcome::Sent { done_at } => t = done_at,
            SendOutcome::WouldBlock => {
                blocked = true;
                break;
            }
        }
    }
    assert!(blocked, "sendfile honours the sndbuf too");
}

#[test]
fn pf_failure_mid_stream_keeps_delivering() {
    // octoNIC firmware: when the flow's home PF dies mid-stream, MPFS
    // resteers the rule to the survivor and not a byte is lost.
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    let th = duplex.server.spawn_thread(0); // node 0 → home PF is PF0
    let flow = FlowTuple::tcp(0x0A00_0001, 904, 0x0A00_0002, 80);
    let sock = duplex.server.open_socket(Time::ZERO, th, flow, NetdevId(0));
    // One healthy packet, then PF0 dies, then the stream keeps coming.
    let outs = wire(&mut duplex.server, Time::from_us(10), flow, 1448, 0);
    assert!(!outs.is_empty(), "healthy path delivers");
    for o in &outs {
        if let HostOut::Irq { at, queue, .. } = o {
            irq(&mut duplex.server, *at, *queue);
        }
    }
    let pf0 = duplex.server_pfs[0];
    {
        let mut out = OutBuf::new();
        duplex
            .server
            .apply_fault(Time::from_us(50), pf0, FaultKind::PfFail, &mut out);
    }
    assert!(
        duplex.server.nic.counters().resteered_flows >= 1,
        "firmware moved the flow to the survivor"
    );
    for seq in 1..20u64 {
        let outs = wire(
            &mut duplex.server,
            Time::from_us(50 + seq * 10),
            flow,
            1448,
            seq,
        );
        for o in &outs {
            if let HostOut::Irq { at, queue, .. } = o {
                irq(&mut duplex.server, *at, *queue);
            }
        }
    }
    // Sweep every queue (the survivor's queue index is a firmware detail)
    // and drain the socket: all 20 packets arrived.
    for qi in 0..duplex.server.nic.queue_count() {
        irq(&mut duplex.server, Time::from_ms(1), nic::QueueId(qi));
    }
    match duplex.server.recv(Time::from_ms(2), sock, u64::MAX) {
        RecvOutcome::Data { bytes, .. } => {
            assert_eq!(bytes, 20 * 1448, "every packet delivered")
        }
        RecvOutcome::WouldBlock => panic!("stream must survive the PF death"),
    }
    assert_eq!(duplex.server.nic.counters().dropped_pf_dead, 0);
}

#[test]
fn link_degrade_slows_dma_but_loses_nothing() {
    // A retrained (narrower/slower) link stretches the DMA+MSI-X path —
    // the interrupt for an identical packet fires later — but every byte
    // still reaches the application.
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    let th = duplex.server.spawn_thread(0);
    let flow = FlowTuple::tcp(0x0A00_0001, 905, 0x0A00_0002, 80);
    let sock = duplex.server.open_socket(Time::ZERO, th, flow, NetdevId(0));
    let irq_delta = |outs: &[HostOut], sent: Time| -> Dur {
        outs.iter()
            .find_map(|o| match o {
                HostOut::Irq { at, .. } => Some(at.since(sent)),
                _ => None,
            })
            .expect("arrival raises an interrupt")
    };
    let t1 = Time::from_us(10);
    let outs = wire(&mut duplex.server, t1, flow, 1448, 0);
    let healthy = irq_delta(&outs, t1);
    for o in &outs {
        if let HostOut::Irq { at, queue, .. } = o {
            irq(&mut duplex.server, *at, *queue);
        }
    }
    // Gen3 x4 ≈ 1/8th of the healthy link; retraining stalls 20 us, long
    // over by the next arrival.
    let pf0 = duplex.server_pfs[0];
    {
        let mut out = OutBuf::new();
        duplex.server.apply_fault(
            Time::from_us(100),
            pf0,
            FaultKind::LinkDegrade { lanes: 4, gen: 3 },
            &mut out,
        );
    }
    let t2 = Time::from_us(500);
    let outs = wire(&mut duplex.server, t2, flow, 1448, 1);
    let degraded = irq_delta(&outs, t2);
    for o in &outs {
        if let HostOut::Irq { at, queue, .. } = o {
            irq(&mut duplex.server, *at, *queue);
        }
    }
    assert!(
        degraded > healthy,
        "degraded link is slower per byte: {healthy:?} -> {degraded:?}"
    );
    match duplex.server.recv(Time::from_ms(1), sock, u64::MAX) {
        RecvOutcome::Data { bytes, .. } => assert_eq!(bytes, 2 * 1448, "no data lost"),
        RecvOutcome::WouldBlock => panic!("degradation must not drop data"),
    }
}

#[test]
fn lost_interrupt_recovers_via_watchdog() {
    // A swallowed MSI-X leaves the completion sitting in host memory; the
    // driver watchdog notices the stale landing and polls the queue.
    let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
    let th = duplex.server.spawn_thread(0);
    let flow = FlowTuple::tcp(0x0A00_0001, 906, 0x0A00_0002, 80);
    let sock = duplex.server.open_socket(Time::ZERO, th, flow, NetdevId(0));
    let pf0 = duplex.server_pfs[0];
    {
        let mut out = OutBuf::new();
        duplex
            .server
            .apply_fault(Time::from_us(5), pf0, FaultKind::IrqLoss, &mut out);
    }
    let outs = wire(&mut duplex.server, Time::from_us(10), flow, 1448, 0);
    assert!(
        !outs.iter().any(|o| matches!(o, HostOut::Irq { .. })),
        "the MSI-X was swallowed"
    );
    assert!(duplex.server.nic.counters().lost_irqs >= 1);
    // Without the interrupt nothing reaches the socket.
    assert!(matches!(
        duplex.server.recv(Time::from_us(50), sock, u64::MAX),
        RecvOutcome::WouldBlock
    ));
    // The watchdog (timeout 100 us) fires well past the landing and
    // synthesizes the missed interrupt.
    let mut out = OutBuf::new();
    duplex.server.watchdog(Time::from_us(250), &mut out);
    let outs: Vec<HostOut> = out.drain().collect();
    let mut polled = false;
    for o in &outs {
        if let HostOut::Irq { at, queue, .. } = o {
            irq(&mut duplex.server, *at, *queue);
            polled = true;
        }
    }
    assert!(polled, "watchdog polls the stale queue");
    assert!(duplex.server.robustness().watchdog_irq_recoveries >= 1);
    match duplex.server.recv(Time::from_us(300), sock, u64::MAX) {
        RecvOutcome::Data { bytes, .. } => assert_eq!(bytes, 1448),
        RecvOutcome::WouldBlock => panic!("watchdog recovery must deliver the data"),
    }
}
