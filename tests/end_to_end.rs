//! Cross-crate integration: the paper's headline invariants, end to end
//! through memsys + pcie + nic + kernel + ioctopus.

use ioctopus::config::Placement;
use ioctopus::experiments::{pktgen, tcp_stream};

#[test]
fn octopus_eliminates_nudma_on_rx() {
    let local = tcp_stream::run_rx(Placement::Local, 65536, 6);
    let remote = tcp_stream::run_rx(Placement::Remote, 65536, 6);
    let octo = tcp_stream::run_rx(Placement::Octopus, 65536, 6);
    // The three-way ordering that defines the paper.
    assert!(
        octo.throughput_gbps > remote.throughput_gbps,
        "octo {:.2} must beat remote {:.2}",
        octo.throughput_gbps,
        remote.throughput_gbps
    );
    let vs_local = octo.throughput_gbps / local.throughput_gbps;
    assert!(
        (0.95..=1.05).contains(&vs_local),
        "octo must match local: {vs_local:.3}"
    );
    // And the memory-system signature: octo has no DRAM traffic, remote
    // has multiples of its throughput.
    assert!(octo.membw_gbps < 0.2 * octo.throughput_gbps);
    assert!(remote.membw_gbps > 1.5 * remote.throughput_gbps);
}

#[test]
fn octopus_runs_on_the_far_socket_yet_stays_local() {
    // Octopus pins the app to node 1 (like Remote) — the locality comes
    // from steering, not from placement.
    assert_eq!(Placement::Octopus.app_core(), Placement::Remote.app_core());
    let octo = pktgen::run(Placement::Octopus, 64, 4, false);
    let local = pktgen::run(Placement::Local, 64, 4, false);
    let ratio = octo.rate_per_sec / local.rate_per_sec;
    assert!(
        (0.95..=1.05).contains(&ratio),
        "pktgen octo/local = {ratio:.3}"
    );
}

#[test]
fn nudma_signature_scales_with_message_size() {
    // The paper's Figure 6 trend: the local advantage grows from small to
    // large messages (per-syscall overheads amortize away, per-packet
    // NUDMA costs remain).
    let small_l = tcp_stream::run_rx(Placement::Local, 64, 6);
    let small_r = tcp_stream::run_rx(Placement::Remote, 64, 6);
    let big_l = tcp_stream::run_rx(Placement::Local, 65536, 6);
    let big_r = tcp_stream::run_rx(Placement::Remote, 65536, 6);
    let small_ratio = small_l.throughput_gbps / small_r.throughput_gbps;
    let big_ratio = big_l.throughput_gbps / big_r.throughput_gbps;
    assert!(
        big_ratio > small_ratio,
        "gap grows with size: {small_ratio:.3} -> {big_ratio:.3}"
    );
    // Throughput itself also grows with message size in every config.
    assert!(big_l.throughput_gbps > small_l.throughput_gbps * 2.0);
}

#[test]
fn tx_is_nudma_insensitive_but_rx_is_not() {
    // Figure 7 vs Figure 6 in one assertion: TSO Tx hides NUDMA (the CPU
    // writes LLC-hot buffers either way), Rx does not.
    let tx_gap = {
        let l = tcp_stream::run_tx(Placement::Local, 65536, 6);
        let r = tcp_stream::run_tx(Placement::Remote, 65536, 6);
        l.throughput_gbps / r.throughput_gbps
    };
    let rx_gap = {
        let l = tcp_stream::run_rx(Placement::Local, 65536, 6);
        let r = tcp_stream::run_rx(Placement::Remote, 65536, 6);
        l.throughput_gbps / r.throughput_gbps
    };
    assert!(tx_gap < 1.1, "Tx gap {tx_gap:.3} should be ~1.0");
    assert!(
        rx_gap > tx_gap + 0.05,
        "Rx gap {rx_gap:.3} must exceed Tx gap {tx_gap:.3}"
    );
}
