//! Differential test: the parallel sweep must be bit-for-bit identical to
//! the serial loop it replaced. Each sweep point is a self-contained,
//! deterministic simulation, so any divergence means shared mutable state
//! leaked between points — exactly the bug class this test exists to catch.

use ioctopus::config::Placement;
use ioctopus::experiments::tcp_rr::RrConfig;
use ioctopus::experiments::{tcp_rr, tcp_stream};
use ioctopus::sweep;

/// A full Figure 6-style sweep (both placements at every message size),
/// serial vs parallel, compared through exact bit patterns of every float.
#[test]
fn fig06_sweep_parallel_is_bit_identical_to_serial() {
    let sizes: Vec<u64> = vec![256, 4096, 65536];
    let point = |msg: u64| {
        let l = tcp_stream::run_rx(Placement::Octopus, msg, 3);
        let r = tcp_stream::run_rx(Placement::Remote, msg, 3);
        [
            l.throughput_gbps,
            l.membw_gbps,
            l.cpu_cores,
            r.throughput_gbps,
            r.membw_gbps,
            r.cpu_cores,
        ]
        .map(f64::to_bits)
    };
    let serial = sweep::sweep_serial(sizes.clone(), point);
    let parallel = sweep::sweep(sizes, point);
    assert_eq!(serial, parallel, "parallel sweep diverged from serial");
}

/// Latency figures exercise the RR apps and histograms; check those too.
#[test]
fn rr_sweep_parallel_is_bit_identical_to_serial() {
    let sizes: Vec<u64> = vec![64, 1024, 16384];
    let point = |msg: u64| {
        let r = tcp_rr::run(RrConfig::Rr, msg, 30);
        [r.mean_us, r.p90_us, r.p99_us].map(f64::to_bits)
    };
    let serial = sweep::sweep_serial(sizes.clone(), point);
    let parallel = sweep::sweep(sizes, point);
    assert_eq!(serial, parallel, "parallel RR sweep diverged from serial");
}

/// Repeated parallel sweeps of the same points agree with each other
/// (schedule-independence: results cannot depend on worker interleaving).
#[test]
fn parallel_sweep_is_schedule_independent() {
    let point = |msg: u64| {
        tcp_stream::run_rx(Placement::Octopus, msg, 2)
            .throughput_gbps
            .to_bits()
    };
    let a = sweep::sweep(vec![512, 8192], point);
    let b = sweep::sweep(vec![512, 8192], point);
    assert_eq!(a, b);
}
