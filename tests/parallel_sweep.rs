//! Differential test: the parallel sweep must be bit-for-bit identical to
//! the serial loop it replaced. Each sweep point is a self-contained,
//! deterministic simulation, so any divergence means shared mutable state
//! leaked between points — exactly the bug class this test exists to catch.

use ioctopus::config::Placement;
use ioctopus::experiments::tcp_rr::RrConfig;
use ioctopus::experiments::{tcp_rr, tcp_stream};
use ioctopus::sweep;

/// A full Figure 6-style sweep (both placements at every message size),
/// serial vs parallel, compared through exact bit patterns of every float.
#[test]
fn fig06_sweep_parallel_is_bit_identical_to_serial() {
    let sizes: Vec<u64> = vec![256, 4096, 65536];
    let point = |msg: u64| {
        let l = tcp_stream::run_rx(Placement::Octopus, msg, 3);
        let r = tcp_stream::run_rx(Placement::Remote, msg, 3);
        [
            l.throughput_gbps,
            l.membw_gbps,
            l.cpu_cores,
            r.throughput_gbps,
            r.membw_gbps,
            r.cpu_cores,
        ]
        .map(f64::to_bits)
    };
    let serial = sweep::sweep_serial(sizes.clone(), point);
    let parallel = sweep::sweep(sizes, point);
    assert_eq!(serial, parallel, "parallel sweep diverged from serial");
}

/// Latency figures exercise the RR apps and histograms; check those too.
#[test]
fn rr_sweep_parallel_is_bit_identical_to_serial() {
    let sizes: Vec<u64> = vec![64, 1024, 16384];
    let point = |msg: u64| {
        let r = tcp_rr::run(RrConfig::Rr, msg, 30);
        [r.mean_us, r.p90_us, r.p99_us].map(f64::to_bits)
    };
    let serial = sweep::sweep_serial(sizes.clone(), point);
    let parallel = sweep::sweep(sizes, point);
    assert_eq!(serial, parallel, "parallel RR sweep diverged from serial");
}

/// Chaos-campaign satellite: the calendar event queue must stay
/// bit-identical to the binary-heap oracle under fault-heavy schedules
/// whose retry timers reschedule events *at* or nanoseconds after the
/// current instant — exactly the traffic the recovery paths generate
/// (bounded exponential backoff, zero-gap flaps, same-instant bursts).
#[test]
fn calendar_queue_matches_heap_oracle_under_fault_heavy_schedules() {
    use simcore::campaign::{plan_for, CampaignConfig};
    use simcore::queue::HeapEventQueue;
    use simcore::{Dur, EventQueue, SimRng, Time};

    trait TestQueue {
        fn push(&mut self, at: Time, e: u64);
        fn pop(&mut self) -> Option<(Time, u64)>;
        fn regressions(&self) -> u64;
    }
    impl TestQueue for EventQueue<u64> {
        fn push(&mut self, at: Time, e: u64) {
            EventQueue::push(self, at, e);
        }
        fn pop(&mut self) -> Option<(Time, u64)> {
            EventQueue::pop(self)
        }
        fn regressions(&self) -> u64 {
            self.time_regressions()
        }
    }
    impl TestQueue for HeapEventQueue<u64> {
        fn push(&mut self, at: Time, e: u64) {
            HeapEventQueue::push(self, at, e);
        }
        fn pop(&mut self) -> Option<(Time, u64)> {
            HeapEventQueue::pop(self)
        }
        fn regressions(&self) -> u64 {
            self.time_regressions()
        }
    }

    // Seed the queue with several generated fault schedules, then let every
    // pop spawn retry timers the way the recovery code does. The driver is
    // deterministic, so both queue implementations see the identical push
    // sequence and must produce the identical pop sequence.
    fn drive<Q: TestQueue>(q: &mut Q, seed: u64) -> (Vec<(Time, u64)>, u64) {
        let mut cfg = CampaignConfig::new(seed, 4);
        cfg.media_faults = true;
        let mut id = 0u64;
        for i in 0..6 {
            for e in plan_for(&cfg, i).events() {
                q.push(e.at, id);
                id += 1;
            }
        }
        let mut rng = SimRng::seed(seed ^ 0xA5A5_5A5A);
        let mut out = Vec::new();
        while let Some((at, e)) = q.pop() {
            out.push((at, e));
            let kids = if rng.chance(0.35) {
                2
            } else if rng.chance(0.5) {
                1
            } else {
                0
            };
            for _ in 0..kids {
                if id >= 50_000 {
                    break;
                }
                let gap = if rng.chance(0.25) {
                    Dur::ZERO // a retry landing exactly *now*
                } else if rng.chance(0.3) {
                    Dur::from_ns(1 + rng.below(50)) // near-now
                } else {
                    let attempt = rng.below(6) as u32;
                    Dur::from_us(20) * (1u64 << attempt.min(10))
                };
                q.push(at + gap, id);
                id += 1;
            }
        }
        (out, q.regressions())
    }

    for seed in [0x0c70u64, 0xf417, 0x9e37_79b9] {
        let (a, ra) = drive(&mut EventQueue::new(), seed);
        let (b, rb) = drive(&mut HeapEventQueue::new(), seed);
        assert!(
            a.len() > 10_000,
            "driver must stress the wheel: {}",
            a.len()
        );
        assert_eq!(a, b, "calendar queue diverged from the heap oracle");
        assert_eq!(ra, rb, "regression counters diverged");
        assert_eq!(ra, 0, "no push ever lands behind the clock");
    }
}

/// Repeated parallel sweeps of the same points agree with each other
/// (schedule-independence: results cannot depend on worker interleaving).
#[test]
fn parallel_sweep_is_schedule_independent() {
    let point = |msg: u64| {
        tcp_stream::run_rx(Placement::Octopus, msg, 2)
            .throughput_gbps
            .to_bits()
    };
    let a = sweep::sweep(vec![512, 8192], point);
    let b = sweep::sweep(vec![512, 8192], point);
    assert_eq!(a, b);
}
