//! Umbrella crate for the IOctopus (ASPLOS 2020) reproduction workspace.
//!
//! This package exists to host the workspace-level runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`). It re-exports
//! the member crates so examples and tests can use one coherent namespace.
//!
//! Start with [`ioctopus`] — the core crate — or run:
//!
//! ```text
//! cargo run --example quickstart
//! ```

pub use ioctopus;
pub use kernel;
pub use memsys;
pub use nic;
pub use nvme;
pub use pcie;
pub use simcore;
pub use workloads;
