//! Thread migration (the paper's Figure 14 scenario): a netperf receiver is
//! moved between sockets with `sched_setaffinity` mid-run.
//!
//! With the octoNIC, IOctoRFS reprograms the flow→PF steering once the old
//! queue drains, so the traffic follows the thread to its new local PF with
//! no loss and no reordering. With standard firmware the flow is stuck on
//! its original PF and throughput degrades to remote level.
//!
//! ```text
//! cargo run --release --example thread_migration
//! ```

use ioctopus::experiments::migration;

fn sparkline(vals: &[f64], max: f64) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    vals.iter()
        .map(|v| {
            let idx = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
            BARS[idx]
        })
        .collect()
}

fn main() {
    println!("Thread migration at t=4.5 (simulated seconds, scaled): CPU0 -> CPU1\n");
    for octo in [true, false] {
        let r = migration::run(octo);
        let pf0: Vec<f64> = r.samples.iter().step_by(2).map(|s| s.pf0_gbps).collect();
        let pf1: Vec<f64> = r.samples.iter().step_by(2).map(|s| s.pf1_gbps).collect();
        let max = pf0.iter().chain(pf1.iter()).cloned().fold(1.0f64, f64::max);
        println!("=== {} ===", r.config);
        println!("PF0 {}", sparkline(&pf0, max));
        println!("PF1 {}", sparkline(&pf1, max));
        let (before, _) = migration::mean_rates(&r, 1.0, 4.0);
        let (after0, after1) = migration::mean_rates(&r, 6.0, 9.5);
        println!(
            "before: PF0 {before:.1} Gb/s | after: PF0 {after0:.1}, PF1 {after1:.1} Gb/s | \
             out-of-order: {}, dropped: {}\n",
            r.ooo_packets, r.dropped
        );
    }
    println!("octoNIC: traffic moves smoothly between PFs and keeps full speed.");
    println!("ethNIC:  the flow cannot leave PF0; throughput drops to remote level.");
}
