//! A memcached-style key-value store served over the simulated fabric
//! (the paper's §5.1.3 workload): 14 memslap clients, 256 B keys, 512 KB
//! values, sweeping the SET ratio.
//!
//! ```text
//! cargo run --release --example key_value_store
//! ```

use ioctopus::config::Placement;
use ioctopus::experiments::memcached;

fn main() {
    println!("memcached / memslap over the simulated testbed");
    println!("(14 client instances, 256 B keys, 512 KB values)\n");
    println!(
        "{:>6} | {:>14} {:>14} | {:>8}",
        "SET%", "octoNIC [KT/s]", "remote [KT/s]", "gain"
    );
    for set_pct in [0u32, 30, 60, 100] {
        let ratio = set_pct as f64 / 100.0;
        let octo = memcached::run(Placement::Octopus, ratio, 10);
        let remote = memcached::run(Placement::Remote, ratio, 10);
        println!(
            "{:>6} | {:>14.2} {:>14.2} | {:>7.2}x",
            set_pct,
            octo.rate_per_sec / 1e3,
            remote.rate_per_sec / 1e3,
            octo.rate_per_sec / remote.rate_per_sec,
        );
    }
    println!("\nSET operations are inbound (Rx) traffic, which suffers most from NUDMA:");
    println!("the octoNIC's advantage grows with the SET ratio (paper: up to 16%).");
}
