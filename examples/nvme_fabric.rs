//! IOctopus on storage (the paper's §5.4): fio against dual-port NVMe
//! drives whose data port is remote to the submitting threads, under
//! growing UPI congestion — plus the OctoSSD mode the paper leaves as
//! future work.
//!
//! ```text
//! cargo run --release --example nvme_fabric
//! ```

use ioctopus::experiments::nvme_fio;

fn main() {
    println!("fio: 8 jobs x QD32 x 128 KB direct reads, 4 dual-port NVMe SSDs");
    println!("(2x24-core Skylake, drives' active port remote to the fio threads)\n");
    println!(
        "{:>9} | {:>14} {:>14} | {:>16}",
        "#STREAMs", "fio norm", "fio [GB/s]", "OctoSSD norm"
    );
    for streams in [0usize, 2, 5, 8] {
        let fixed = nvme_fio::run(streams, false, 8);
        let octo = nvme_fio::run(streams, true, 8);
        println!(
            "{:>9} | {:>14.2} {:>14.2} | {:>16.2}",
            streams, fixed.fio_normalized, fixed.fio_gbs, octo.fio_normalized
        );
    }
    println!("\nPaper: fio degrades up to 24% once ~5 STREAM instances saturate the UPI.");
    println!("OctoSSD (data DMA via the port local to each buffer) is the §5.4 future");
    println!("work, implemented here: its normalized throughput stays flat.");
}
