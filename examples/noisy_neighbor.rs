//! Noisy neighbors on the interconnect (the paper's §5.2): STREAM pairs
//! saturate the QPI while a latency-sensitive service shares the machine.
//!
//! With the NIC remote to the service, every packet DMA crosses the
//! congested interconnect and latency/throughput crater; the octoNIC keeps
//! the I/O path node-local and nearly unaffected.
//!
//! ```text
//! cargo run --release --example noisy_neighbor
//! ```

use ioctopus::config::Placement;
use ioctopus::experiments::congestion;

fn main() {
    println!("QPI noisy neighbors: netperf Rx + sockperf latency vs STREAM pairs\n");
    println!(
        "{:>7} | {:>11} {:>11} {:>7} | {:>10} {:>10}",
        "pairs", "octo[Gb/s]", "rem[Gb/s]", "gain", "octo[us]", "rem[us]"
    );
    for pairs in [1usize, 3, 6] {
        let t_octo = congestion::run_fig11(Placement::Octopus, pairs, 8);
        let t_rem = congestion::run_fig11(Placement::Remote, pairs, 8);
        let l_octo = congestion::run_fig12(Placement::Octopus, pairs, 50);
        let l_rem = congestion::run_fig12(Placement::Remote, pairs, 50);
        println!(
            "{:>7} | {:>11.2} {:>11.2} {:>6.2}x | {:>10.2} {:>10.2}",
            pairs,
            t_octo.throughput_gbps,
            t_rem.throughput_gbps,
            t_octo.throughput_gbps / t_rem.throughput_gbps,
            l_octo.mean_us,
            l_rem.mean_us,
        );
    }
    println!("\nThe octoNIC decouples I/O from interconnect load: the paper measured");
    println!("1.82-2.67x the remote throughput and 10-22% lower latency.");
}
