//! Quickstart: the paper's headline result in one run.
//!
//! Builds the §5 testbed three ways — NIC-local workload, NIC-remote
//! workload (NUDMA), and the octoNIC — runs single-core netperf TCP Rx on
//! each, and prints throughput, memory bandwidth, and CPU utilization.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ioctopus::config::Placement;
use ioctopus::experiments::tcp_stream;

fn main() {
    println!("IOctopus quickstart: single-core TCP Rx, 64 KiB messages");
    println!("(2x14-core Broadwell server, bifurcated 100 GbE NIC, back-to-back client)\n");
    println!(
        "{:>8} | {:>12} | {:>14} | {:>10}",
        "config", "tput [Gb/s]", "membw [Gb/s]", "cpu [cores]"
    );

    let mut remote_tput = 0.0;
    let mut octo_tput = 0.0;
    for p in Placement::all() {
        let r = tcp_stream::run_rx(p, 65536, 8);
        if p == Placement::Remote {
            remote_tput = r.throughput_gbps;
        }
        if p == Placement::Octopus {
            octo_tput = r.throughput_gbps;
        }
        println!(
            "{:>8} | {:>12.2} | {:>14.2} | {:>10.2}",
            r.config, r.throughput_gbps, r.membw_gbps, r.cpu_cores
        );
    }

    println!(
        "\nThe octoNIC eliminates NUDMA: {:.2}x the remote throughput, zero DRAM",
        octo_tput / remote_tput
    );
    println!("traffic (every DMA is DDIO-local), identical to the local configuration —");
    println!("without pinning the workload to the NIC's socket.");
}
